"""Determinism lint rules (the ``DET`` catalogue).

Each rule is an :class:`ast.NodeVisitor` registered in :data:`RULES` under
its code.  The catalogue enforces the invariants that keep a simulation run
bit-for-bit reproducible across hosts and replays:

========  ==============================================================
DET001    no wall-clock reads (``time.time``, ``datetime.now``, ...)
DET002    no ambient module-level ``random`` functions
DET003    no bare ``random.Random(...)`` outside ``sim/random.py``
DET004    no order-sensitive iteration over sets without ``sorted()``
DET005    no ``id()``/``hash()``-based ordering keys
DET006    no float arithmetic feeding simulated-time APIs
DET007    process discipline: no blocking sleep, no discarded wait events
DET008    no mutable or model-instance default arguments
========  ==============================================================

The whole-program rules — DET009/DET010 (interprocedural taint) and the
checkpoint-coverage family CKPT001–CKPT003 — need every file's AST at
once and live in :mod:`repro.lint.graph`.

Rationale and worked examples live in ``docs/determinism.md``; the full
catalogue including the project-wide rules is in
``docs/static-analysis.md``.  Suppress a single knowingly-safe line with
``# repro: noqa=DET004``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Type

from repro.lint.engine import LintContext

RULES: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    RULES[cls.code] = cls
    return cls


def all_codes() -> List[str]:
    return sorted(RULES)


class Rule(ast.NodeVisitor):
    """Base class: one rule instance lints one file."""

    code: str = ""
    name: str = ""
    summary: str = ""
    #: rules that only make sense inside the ``repro`` package itself
    #: (tests and benchmarks may legitimately break them at the boundary)
    library_only: bool = False

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx

    def run(self) -> None:
        self.visit(self.ctx.tree)

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.add(self.code, node, message)

    def resolve(self, node: ast.AST) -> Optional[str]:
        return self.ctx.imports.resolve(node)


@register
class WallClockRule(Rule):
    """The host wall clock must never leak into simulation logic."""

    code = "DET001"
    name = "wall-clock"
    summary = "host wall-clock read in simulation code"

    BANNED = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.ctime", "time.localtime", "time.gmtime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.resolve(node.func)
        if origin in self.BANNED:
            self.report(node, f"wall-clock read `{origin}()`; simulated "
                              f"time comes from `Simulator.now` (integer ns)")
        self.generic_visit(node)


@register
class AmbientRandomRule(Rule):
    """Module-level ``random`` functions share hidden global state."""

    code = "DET002"
    name = "ambient-random"
    summary = "module-level random function (hidden global state)"

    MODULE_FNS = {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "seed", "getrandbits", "expovariate", "gauss",
        "normalvariate", "lognormvariate", "triangular", "betavariate",
        "paretovariate", "vonmisesvariate", "weibullvariate", "randbytes",
    }

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.resolve(node.func)
        if origin and origin.startswith("random.") \
                and origin.split(".", 1)[1] in self.MODULE_FNS:
            self.report(node, f"ambient `{origin}()` draws from the global "
                              f"RNG; use a named `RandomStreams` substream")
        self.generic_visit(node)


@register
class BareRandomConstructionRule(Rule):
    """All library randomness flows through named ``RandomStreams``."""

    code = "DET003"
    name = "bare-random-construction"
    summary = "bare random.Random construction outside sim/random.py"
    library_only = True

    CONSTRUCTORS = {"random.Random", "random.SystemRandom"}

    def run(self) -> None:
        if self.ctx.path.endswith("sim/random.py"):
            return                      # the one blessed construction site
        self.visit(self.ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.resolve(node.func)
        if origin in self.CONSTRUCTORS:
            self.report(node, f"bare `{origin}(...)`; derive a named "
                              f"substream via `RandomStreams.stream()` or "
                              f"`sim.random.derived_rng()` instead")
        self.generic_visit(node)


#: builtins whose result does not depend on argument iteration order
_ORDER_FREE_SINKS = {"sorted", "min", "max", "sum", "len", "any", "all",
                     "set", "frozenset"}


@register
class UnorderedIterationRule(Rule):
    """Iterating a set in an order-sensitive position is a replay hazard.

    Set iteration order depends on element hashes — for strings it varies
    with ``PYTHONHASHSEED``, for plain objects with ``id()`` — so a loop,
    list conversion, or dict build fed by a set can differ between two runs
    of the *same* scenario.  Wrap the set in ``sorted(...)``.  (Dicts are
    insertion-ordered in Python >= 3.7 and are therefore allowed.)

    Tracking is intentionally local and conservative: set literals, set
    comprehensions, ``set()``/``frozenset()`` calls, set-operator results,
    names assigned such values in the same function, and ``self``
    attributes annotated or assigned as sets in the same class.
    """

    code = "DET004"
    name = "unordered-iteration"
    summary = "order-sensitive iteration over a set without sorted()"

    SET_METHODS = {"union", "intersection", "difference",
                   "symmetric_difference", "copy"}
    _SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet",
                        "MutableSet", "AbstractSet"}

    def run(self) -> None:
        self._local_sets: List[Set[str]] = [set()]   # function scope stack
        self._attr_sets: List[Set[str]] = [set()]    # class scope stack
        self._sanctioned: Set[int] = set()           # nodes inside sorted()&co
        self.visit(self.ctx.tree)

    # -- scope management ---------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        attrs: Set[str] = set()
        for sub in ast.walk(node):
            target = None
            if isinstance(sub, ast.AnnAssign) and self._is_set_annotation(
                    sub.annotation):
                target = sub.target
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and self._is_set_expr(sub.value):
                target = sub.targets[0]
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                attrs.add(target.attr)
        self._attr_sets.append(attrs)
        self.generic_visit(node)
        self._attr_sets.pop()

    def _visit_function(self, node) -> None:
        names: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name) \
                    and self._is_set_expr(sub.value, names):
                names.add(sub.targets[0].id)
            elif isinstance(sub, ast.AnnAssign) \
                    and isinstance(sub.target, ast.Name) \
                    and self._is_set_annotation(sub.annotation):
                names.add(sub.target.id)
        self._local_sets.append(names)
        self.generic_visit(node)
        self._local_sets.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- set-typed expression recognition ------------------------------------

    def _is_set_annotation(self, ann: ast.AST) -> bool:
        if isinstance(ann, ast.Subscript):
            ann = ann.value
        if isinstance(ann, ast.Attribute):
            return ann.attr in self._SET_ANNOTATIONS
        return isinstance(ann, ast.Name) and ann.id in self._SET_ANNOTATIONS

    def _is_set_expr(self, node: ast.AST,
                     extra_names: Optional[Set[str]] = None) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in self.SET_METHODS \
                    and self._is_set_expr(node.func.value, extra_names):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
            return (self._is_set_expr(node.left, extra_names) or
                    self._is_set_expr(node.right, extra_names))
        if isinstance(node, ast.Name):
            if extra_names is not None and node.id in extra_names:
                return True
            return node.id in self._local_sets[-1]
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr in self._attr_sets[-1]
        return False

    # -- order-sensitive sinks -----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            if node.func.id in _ORDER_FREE_SINKS:
                for arg in node.args:
                    self._sanctioned.add(id(arg))
            elif node.func.id in ("list", "tuple") and node.args \
                    and self._is_set_expr(node.args[0]):
                self.report(node, f"`{node.func.id}()` of a set fixes an "
                                  f"arbitrary order; use `sorted(...)`")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self.report(node.iter, "iterating a set in a `for` loop is "
                                   "order-sensitive; wrap in `sorted(...)`")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        if id(node) not in self._sanctioned:
            for gen in node.generators:
                if self._is_set_expr(gen.iter):
                    self.report(gen.iter, "comprehension over a set builds "
                                          "an ordered result from unordered "
                                          "input; wrap in `sorted(...)`")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_DictComp = _check_comprehension
    # SetComp is order-free: set in, set out.


@register
class IdOrderingRule(Rule):
    """``id()``/``hash()`` values differ between runs; never order by them."""

    code = "DET005"
    name = "id-ordering"
    summary = "id()/hash()-based ordering key"

    ORDERING_FNS = {"sorted", "min", "max"}

    def visit_Call(self, node: ast.Call) -> None:
        is_ordering = (isinstance(node.func, ast.Name)
                       and node.func.id in self.ORDERING_FNS) or \
                      (isinstance(node.func, ast.Attribute)
                       and node.func.attr == "sort")
        if is_ordering:
            for kw in node.keywords:
                if kw.arg == "key" and self._mentions_identity(kw.value):
                    self.report(kw.value, "ordering by `id()`/`hash()` "
                                          "differs between runs; sort by a "
                                          "stable field (e.g. `.name`)")
        self.generic_visit(node)

    @staticmethod
    def _mentions_identity(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in ("id", "hash"):
            return True
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                    and sub.func.id in ("id", "hash"):
                return True
        return False


@register
class FloatTimeRule(Rule):
    """Simulated time is integer nanoseconds; float feeds are drift bugs.

    Flags float literals, true division, and ``float()`` in arguments to
    the scheduling APIs (``timeout``/``sleep``/``call_at``/``call_in`` and
    the ``delay=`` keyword of ``succeed``/``fail``).  Explicit quantization
    through ``int(...)``/``round(...)`` or floor division is accepted.
    """

    code = "DET006"
    name = "float-time"
    summary = "float arithmetic feeding a simulated-time API"

    TIME_METHODS = {"timeout", "sleep", "call_at", "call_in"}
    DELAY_KW_METHODS = {"succeed", "fail"}

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in self.TIME_METHODS and node.args:
                self._check_time_arg(node.args[0], node.func.attr)
            if node.func.attr in self.DELAY_KW_METHODS:
                for kw in node.keywords:
                    if kw.arg == "delay":
                        self._check_time_arg(kw.value, node.func.attr)
        self.generic_visit(node)

    def _check_time_arg(self, arg: ast.AST, method: str) -> None:
        offender = self._float_subexpr(arg)
        if offender is not None:
            self.report(offender, f"float arithmetic in `{method}(...)` "
                                  f"time argument; simulated time is "
                                  f"integer ns — use `//` or `int(...)`")

    def _float_subexpr(self, node: ast.AST) -> Optional[ast.AST]:
        """First float-producing subexpression, skipping int()/round()."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("int", "round"):
                return None
            if node.func.id == "float":
                return node
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return node
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return node
        for child in ast.iter_child_nodes(node):
            found = self._float_subexpr(child)
            if found is not None:
                return found
        return None


@register
class ProcessDisciplineRule(Rule):
    """Sim processes wait by yielding events, never by blocking or dropping.

    Two findings: any call to ``time.sleep`` (blocks the host, not the
    simulation), and an expression statement inside a generator that
    creates a wait event (``.timeout(...)``/``.sleep(...)``) and discards
    it — almost certainly a missing ``yield``.
    """

    code = "DET007"
    name = "process-discipline"
    summary = "blocking sleep or discarded wait event in a sim process"

    WAIT_METHODS = {"timeout", "sleep"}

    def visit_Call(self, node: ast.Call) -> None:
        if self.resolve(node.func) == "time.sleep":
            self.report(node, "`time.sleep()` blocks the host; sim "
                              "processes must `yield sim.timeout(...)`")
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        if any(isinstance(sub, (ast.Yield, ast.YieldFrom))
               for sub in self._own_walk(node)):
            for stmt in self._own_walk(node):
                if isinstance(stmt, ast.Expr) \
                        and isinstance(stmt.value, ast.Call) \
                        and isinstance(stmt.value.func, ast.Attribute) \
                        and stmt.value.func.attr in self.WAIT_METHODS:
                    self.report(stmt, f"wait event "
                                      f"`.{stmt.value.func.attr}(...)` is "
                                      f"discarded; did you mean "
                                      f"`yield ...`?")
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @staticmethod
    def _own_walk(func) -> List[ast.AST]:
        """Walk a function's body without descending into nested defs."""
        out: List[ast.AST] = []
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            out.append(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return out


@register
class MutableDefaultRule(Rule):
    """Default arguments are evaluated once, at import.

    A mutable literal (``[]``, ``{}``) is shared across every call; a
    model/config instance (``path: PathDelayModel = PathDelayModel()``)
    is shared across every *object* constructed with the default — one
    experiment's state silently becomes another's.  Use
    ``Optional[...] = None`` and construct per call/instance.  Calls to
    a small allowlist of immutable builtins (``tuple()``, ``float("inf")``,
    ...) are accepted.
    """

    code = "DET008"
    name = "mutable-default"
    summary = "mutable or model-instance default argument"
    library_only = True

    #: builtins whose results are immutable values, safe to share
    ALLOWED_CALLS = {"bool", "bytes", "complex", "float", "frozenset",
                     "int", "str", "tuple"}

    def _visit_function(self, node) -> None:
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults
                                          if d is not None]
        for default in defaults:
            self._check(default)
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def _check(self, node: ast.AST) -> None:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            self.report(node, "mutable literal default is evaluated once "
                              "at import and shared across calls; use "
                              "`Optional[...] = None`")
            return
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in self.ALLOWED_CALLS:
                return
            self.report(node, "instance default is constructed once at "
                              "import and shared by every caller; use "
                              "`Optional[...] = None` and construct per "
                              "call/instance")

"""Whole-program analysis: symbol table, call graph, interprocedural rules.

The per-file rules in :mod:`repro.lint.rules` cannot see a wall-clock
read laundered through a helper in another module, nor an instance
attribute that no checkpoint-stage hook ever covers.  This module builds
a project-wide index from the same per-file ASTs the engine already
parses — every function and class, an import-resolved call graph, and a
class hierarchy rooted at ``Checkpointable`` — and runs two rule
families over it:

* **interprocedural taint** — ``DET009`` (transitive wall-clock reach)
  and ``DET010`` (ambient randomness escaping through a wrapper).
  Direct reads of a banned API seed the taint; taint propagates backward
  along call edges to every caller, and each call site *in library code*
  that reaches a tainted function is reported with the full chain.
  A ``# repro: noqa=DET001``/``DET002`` (or blanket) pragma on the
  source line declares the read a host-side boundary and kills the
  taint; ``noqa=DET009``/``DET010`` on a call line sanctions that one
  edge without hiding the source.

* **checkpoint coverage** — the ``CKPT`` family over every
  ``Checkpointable`` subclass (see
  :mod:`repro.checkpoint.pipeline`), aimed at the upcoming
  ``serialize()/restore()`` plugin hooks:

  ========  ===========================================================
  CKPT001   instance attribute mutated outside ``__init__`` and the
            stage hooks, and never read/written by any stage hook —
            hidden state a snapshot will silently drop
  CKPT002   generator/coroutine object stored on ``self`` — survives
            the ``suspend→save`` boundary but is unserializable by
            construction
  CKPT003   provider overrides ``stage_save`` (or ``serialize``)
            without restore-side parity (``stage_resume``/
            ``stage_abort`` / ``restore``)
  ========  ===========================================================

The runtime counterpart is :mod:`repro.lint.statecheck`, which hashes
provider state across a live pipeline run and attributes divergence to
named fields — use it in tests to confirm or refute a CKPT finding.
Entry points: :func:`check_project` (used by
:func:`repro.lint.engine.check_sources`) and :func:`build_index` /
:meth:`ProjectIndex.to_json` (the ``repro lint --graph`` dump).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (ImportMap, Violation, apply_suppressions,
                               suppression_table)
from repro.lint.rules import AmbientRandomRule, WallClockRule

#: first path segments never registered as module names — they would
#: shadow the standard library (``sim/random.py`` must not answer for
#: ``random.random``)
_STDLIB = frozenset(getattr(sys, "stdlib_module_names", ()))

#: the checkpoint-stage hook surface of a provider (pipeline stages,
#: rollback, and the ROADMAP-item-4 serialization pair)
STAGE_HOOKS = frozenset({
    "stage_prepare", "stage_precopy", "stage_quiesce", "stage_suspend",
    "stage_save", "stage_branch", "stage_resume", "stage_abort",
    "serialize", "restore",
})

#: restore-side hooks that give a ``stage_save`` override parity
_RESTORE_SIDE = frozenset({"stage_resume", "stage_abort", "restore"})

_MAX_RESOLVE_DEPTH = 6
_MAX_SUFFIX_SEGMENTS = 5


# ---------------------------------------------------------------------------
# index data model
# ---------------------------------------------------------------------------

@dataclass
class CallSite:
    """One call expression inside a function body, resolution pending."""

    line: int
    col: int
    #: dotted origin via the import map (``repro.bench.runner._time_run``)
    dotted: Optional[str] = None
    #: bare name called (``helper()``) — same-module function candidate
    bare: Optional[str] = None
    #: ``self.<attr>(...)`` — method call on the enclosing class
    self_attr: Optional[str] = None
    #: resolved callee, filled by :meth:`ProjectIndex._resolve_calls`
    target: Optional["FunctionInfo"] = None


@dataclass
class AttrEvent:
    """One ``self.<attr>`` read or write inside a method."""

    attr: str
    method: str
    line: int
    col: int
    is_write: bool
    #: RHS of a simple ``self.x = <value>`` assignment (CKPT002 input)
    value: Optional[ast.AST] = None


class FunctionInfo:
    """A function or method: its calls and its direct taint sources.

    Nested defs and lambdas are merged into the enclosing function — a
    closure that reads the wall clock usually ends up scheduled or
    returned by its owner, so the conservative merge is the useful one.
    """

    def __init__(self, module: "ModuleInfo", name: str,
                 node: ast.AST, cls: Optional["ClassInfo"] = None) -> None:
        self.module = module
        self.name = name                      # in-module qualname
        self.node = node
        self.cls = cls
        self.is_generator = False
        self.calls: List[CallSite] = []
        #: direct banned reads, already filtered by source-line noqa:
        #: (line, col, dotted origin)
        self.wall_sources: List[Tuple[int, int, str]] = []
        self.random_sources: List[Tuple[int, int, str]] = []

    @property
    def qualname(self) -> str:
        return f"{self.module.dotted}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """A class: methods, resolved bases, and its ``self.*`` attr events."""

    def __init__(self, module: "ModuleInfo", name: str,
                 node: ast.ClassDef) -> None:
        self.module = module
        self.name = name
        self.node = node
        self.base_dotted: List[str] = []      # unresolved spellings
        self.bases: List["ClassInfo"] = []    # resolved, project-local
        self.methods: Dict[str, FunctionInfo] = {}
        self.attr_events: List[AttrEvent] = []

    @property
    def qualname(self) -> str:
        return f"{self.module.dotted}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.qualname})"


class ModuleInfo:
    """One parsed file plus its symbol table and suppression table."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        self.suppress = suppression_table(source, tree)
        self.parts = _module_parts(path)
        self.dotted = _display_name(self.parts)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    @property
    def in_library(self) -> bool:
        return "src/repro/" in self.path or self.path.startswith("repro/")

    def suppresses(self, line: int, code: str) -> bool:
        codes = self.suppress.get(line, ())
        return codes is None or code in codes


def _module_parts(path: str) -> List[str]:
    p = path.replace("\\", "/")
    if p.endswith(".py"):
        p = p[:-3]
    parts = [seg for seg in p.split("/") if seg not in ("", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return parts or ["<module>"]

def _display_name(parts: Sequence[str]) -> str:
    if "src" in parts:
        tail = parts[len(parts) - parts[::-1].index("src"):]
        if tail:
            return ".".join(tail)
    return ".".join(parts[-2:])


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------

def _own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _FunctionCollector:
    """Fills one :class:`FunctionInfo` from its AST (nested defs merged)."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info

    def collect(self) -> None:
        info = self.info
        info.is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in _own_nodes(info.node))
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                self._collect_call(node)
            elif isinstance(node, ast.Attribute) and info.cls is not None:
                self._collect_attr(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._collect_assign(node)

    def _collect_call(self, node: ast.Call) -> None:
        info = self.info
        imports = info.module.imports
        origin = imports.resolve(node.func)
        line, col = node.lineno, node.col_offset
        if origin in WallClockRule.BANNED:
            if not self._source_sanctioned(line, ("DET001", "DET009")):
                info.wall_sources.append((line, col, origin))
            return
        if origin and origin.startswith("random.") \
                and origin.split(".", 1)[1] in AmbientRandomRule.MODULE_FNS:
            if not self._source_sanctioned(line, ("DET002", "DET010")):
                info.random_sources.append((line, col, origin))
            return
        site = CallSite(line=line, col=col, dotted=origin)
        if isinstance(node.func, ast.Name):
            site.bare = node.func.id
        elif isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "self":
            site.self_attr = node.func.attr
        if site.dotted or site.bare or site.self_attr:
            info.calls.append(site)

    def _source_sanctioned(self, line: int, codes: Tuple[str, ...]) -> bool:
        suppress = self.info.module.suppress
        entry = suppress.get(line, ())
        return entry is None or bool(set(codes) & set(entry))

    def _collect_attr(self, node: ast.Attribute) -> None:
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        cls = self.info.cls
        assert cls is not None
        is_write = isinstance(node.ctx, (ast.Store, ast.Del))
        cls.attr_events.append(AttrEvent(
            attr=node.attr, method=self.info.name.rsplit(".", 1)[-1],
            line=node.lineno, col=node.col_offset, is_write=is_write))

    def _collect_assign(self, node: ast.AST) -> None:
        # Remember the RHS of simple ``self.x = value`` bindings so
        # CKPT002 can recognise stored generator objects.
        cls = self.info.cls
        if cls is None:
            return
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            return
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                cls.attr_events.append(AttrEvent(
                    attr=target.attr,
                    method=self.info.name.rsplit(".", 1)[-1],
                    line=node.lineno, col=node.col_offset,
                    is_write=True, value=value))


# ---------------------------------------------------------------------------
# the project index
# ---------------------------------------------------------------------------

@dataclass
class Taint:
    """Why a function is tainted: the banned origin and the path to it."""

    origin: str                     # e.g. "time.time"
    source: FunctionInfo            # the function containing the read
    via: Optional[FunctionInfo]     # next hop toward the source (None=direct)


class ProjectIndex:
    """Symbol table + call graph over every parsed file of a project."""

    def __init__(self, entries: Sequence[Tuple[str, str, ast.AST]]) -> None:
        self.modules: List[ModuleInfo] = []
        self._by_suffix: Dict[str, Optional[ModuleInfo]] = {}
        for path, source, tree in entries:
            module = ModuleInfo(path, source, tree)
            self.modules.append(module)
            self._register_suffixes(module)
        for module in self.modules:
            self._collect_module(module)
        for module in self.modules:
            self._resolve_bases(module)
        self._checkpointable_cache: Dict[int, bool] = {}
        for module in self.modules:
            self._resolve_calls(module)
        self._taints: Dict[str, Dict[int, Taint]] = {}

    # ------------------------------------------------------------- building

    def _register_suffixes(self, module: ModuleInfo) -> None:
        parts = module.parts
        for k in range(1, min(_MAX_SUFFIX_SEGMENTS, len(parts)) + 1):
            suffix_parts = parts[-k:]
            if suffix_parts[0] in _STDLIB:
                continue
            suffix = ".".join(suffix_parts)
            if suffix in self._by_suffix \
                    and self._by_suffix[suffix] is not module:
                self._by_suffix[suffix] = None      # ambiguous
            else:
                self._by_suffix[suffix] = module

    def _collect_module(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(module, node.name, node)
                module.functions[node.name] = info
                _FunctionCollector(info).collect()
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(module, node.name, node)
                module.classes[node.name] = cls
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            module, f"{node.name}.{sub.name}", sub, cls=cls)
                        cls.methods[sub.name] = info
                        module.functions[info.name] = info
                        _FunctionCollector(info).collect()

    def _resolve_bases(self, module: ModuleInfo) -> None:
        for cls in module.classes.values():
            for base in cls.node.bases:
                if isinstance(base, ast.Name) \
                        and base.id in module.classes:
                    cls.bases.append(module.classes[base.id])
                    cls.base_dotted.append(base.id)
                    continue
                dotted = module.imports.resolve(base)
                if dotted is None and isinstance(base, ast.Name):
                    dotted = base.id
                if dotted is None:
                    continue
                cls.base_dotted.append(dotted)
                resolved = self.resolve_dotted(dotted)
                if isinstance(resolved, ClassInfo):
                    cls.bases.append(resolved)

    def _resolve_calls(self, module: ModuleInfo) -> None:
        for info in module.functions.values():
            for site in info.calls:
                site.target = self._resolve_site(module, info, site)

    def _resolve_site(self, module: ModuleInfo, info: FunctionInfo,
                      site: CallSite) -> Optional[FunctionInfo]:
        if site.self_attr is not None and info.cls is not None:
            return self._hierarchy_method(info.cls, site.self_attr)
        if site.dotted is not None:
            resolved = self.resolve_dotted(site.dotted)
            if isinstance(resolved, FunctionInfo):
                return resolved
        if site.bare is not None:
            local = module.functions.get(site.bare)
            if local is not None and local.cls is None:
                return local
        return None

    # ------------------------------------------------------------- lookups

    def resolve_dotted(self, dotted: str, _depth: int = 0):
        """Project symbol for a dotted name, or None.

        Finds the longest module-path prefix known to the index, then
        looks the remainder up as a member — following one level of
        re-export (``from repro.checkpoint.pipeline import Checkpointable``
        in a package ``__init__``) per recursion step.
        """
        if _depth > _MAX_RESOLVE_DEPTH:
            return None
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = self._by_suffix.get(".".join(parts[:i]))
            if module is None:
                continue
            return self._lookup_member(module, ".".join(parts[i:]), _depth)
        return None

    def _lookup_member(self, module: ModuleInfo, member: str, depth: int):
        if member in module.functions:
            return module.functions[member]
        if member in module.classes:
            return module.classes[member]
        head, _, rest = member.partition(".")
        origin = module.imports.names.get(head)
        if origin is not None:
            target = origin + (("." + rest) if rest else "")
            return self.resolve_dotted(target, depth + 1)
        return None

    def _hierarchy(self, cls: ClassInfo) -> List[ClassInfo]:
        """``cls`` plus every resolved ancestor, nearest-first."""
        out: List[ClassInfo] = []
        seen: Set[int] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            out.append(current)
            stack.extend(current.bases)
        return out

    def _hierarchy_method(self, cls: ClassInfo,
                          name: str) -> Optional[FunctionInfo]:
        for ancestor in self._hierarchy(cls):
            if name in ancestor.methods:
                return ancestor.methods[name]
        return None

    def is_checkpointable(self, cls: ClassInfo) -> bool:
        """Does ``cls`` (transitively) subclass ``Checkpointable``?

        The root itself answers False — the rules only police providers.
        """
        if cls.name == "Checkpointable":
            return False
        cached = self._checkpointable_cache.get(id(cls))
        if cached is not None:
            return cached
        found = any(
            ancestor.name == "Checkpointable"
            for ancestor in self._hierarchy(cls)[1:]
        ) or any(
            dotted == "Checkpointable" or dotted.endswith(".Checkpointable")
            for ancestor in self._hierarchy(cls)
            for dotted in ancestor.base_dotted
        )
        self._checkpointable_cache[id(cls)] = found
        return found

    def checkpointable_classes(self) -> List[ClassInfo]:
        return [cls for module in self.modules
                for cls in module.classes.values()
                if self.is_checkpointable(cls)]

    # ------------------------------------------------------------- taint

    def taints(self, kind: str) -> Dict[int, Taint]:
        """``id(FunctionInfo) -> Taint`` for ``kind`` in {wall, random}.

        Seeds are functions with an unsanctioned direct read; taint then
        propagates to callers over call edges, skipping edges whose call
        line carries a matching noqa (``DET009``/``DET010`` or blanket).
        """
        if kind in self._taints:
            return self._taints[kind]
        edge_code = "DET009" if kind == "wall" else "DET010"
        tainted: Dict[int, Taint] = {}
        by_id: Dict[int, FunctionInfo] = {}
        callers: Dict[int, List[Tuple[FunctionInfo, CallSite]]] = {}
        worklist: List[FunctionInfo] = []
        for module in self.modules:
            for info in module.functions.values():
                by_id[id(info)] = info
                sources = (info.wall_sources if kind == "wall"
                           else info.random_sources)
                if sources:
                    line, col, origin = sources[0]
                    tainted[id(info)] = Taint(origin=origin, source=info,
                                              via=None)
                    worklist.append(info)
                for site in info.calls:
                    if site.target is not None:
                        callers.setdefault(id(site.target), []).append(
                            (info, site))
        while worklist:
            current = worklist.pop()
            taint = tainted[id(current)]
            for caller, site in callers.get(id(current), ()):
                if caller.module.suppresses(site.line, edge_code):
                    continue
                if id(caller) in tainted:
                    continue
                tainted[id(caller)] = Taint(origin=taint.origin,
                                            source=taint.source, via=current)
                worklist.append(caller)
        self._taints[kind] = tainted
        return tainted

    def taint_chain(self, info: FunctionInfo, kind: str) -> List[str]:
        """Qualnames from ``info`` down to the function holding the read."""
        tainted = self.taints(kind)
        chain: List[str] = []
        current: Optional[FunctionInfo] = info
        for _ in range(32):
            if current is None or id(current) not in tainted:
                break
            chain.append(current.qualname)
            current = tainted[id(current)].via
        return chain

    # ------------------------------------------------------------- export

    def to_json(self) -> Dict:
        """Deterministic JSON view: symbols, call edges, taint verdicts."""
        wall = self.taints("wall")
        ambient = self.taints("random")
        modules = []
        for module in sorted(self.modules, key=lambda m: m.path):
            functions = []
            for name in sorted(module.functions):
                info = module.functions[name]
                functions.append({
                    "name": name,
                    "generator": info.is_generator,
                    "calls": sorted({
                        site.target.qualname if site.target is not None
                        else (site.dotted or site.bare
                              or f"self.{site.self_attr}")
                        for site in info.calls}),
                    "wall_clock_sources": [
                        {"line": line, "origin": origin}
                        for line, _, origin in info.wall_sources],
                    "ambient_random_sources": [
                        {"line": line, "origin": origin}
                        for line, _, origin in info.random_sources],
                    "wall_clock_tainted": id(info) in wall,
                    "ambient_random_tainted": id(info) in ambient,
                })
            classes = []
            for name in sorted(module.classes):
                cls = module.classes[name]
                classes.append({
                    "name": name,
                    "bases": sorted(set(cls.base_dotted)),
                    "checkpointable": self.is_checkpointable(cls),
                })
            modules.append({"path": module.path, "module": module.dotted,
                            "functions": functions, "classes": classes})
        return {
            "graph": "repro-lint",
            "modules": modules,
            "taint": {
                "wall_clock": sorted(
                    t.source.qualname for t in wall.values()
                    if t.via is None),
                "ambient_random": sorted(
                    t.source.qualname for t in ambient.values()
                    if t.via is None),
            },
        }


def build_index(entries: Sequence[Tuple[str, str, ast.AST]]) -> ProjectIndex:
    """Public constructor used by the CLI's ``--graph`` dump."""
    return ProjectIndex(entries)


# ---------------------------------------------------------------------------
# project rules
# ---------------------------------------------------------------------------

PROJECT_RULES: Dict[str, type] = {}


def register(cls):
    PROJECT_RULES[cls.code] = cls
    return cls


class ProjectRule:
    """Base: one rule instance analyses one :class:`ProjectIndex`."""

    code = ""
    name = ""
    summary = ""
    #: every project rule polices the library; call sites in tests and
    #: benchmarks may legitimately reach host-side helpers
    library_only = True

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.violations: List[Violation] = []

    def run(self) -> None:
        raise NotImplementedError

    def report(self, module: ModuleInfo, line: int, col: int,
               message: str) -> None:
        self.violations.append(Violation(module.path, line, col + 1,
                                         self.code, message))


class _TaintRule(ProjectRule):
    """Shared body of DET009/DET010: report library calls into taint."""

    kind = ""
    advice = ""

    def run(self) -> None:
        tainted = self.index.taints(self.kind)
        for module in self.index.modules:
            if self.library_only and not module.in_library:
                continue
            for info in module.functions.values():
                for site in info.calls:
                    target = site.target
                    if target is None or id(target) not in tainted:
                        continue
                    taint = tainted[id(target)]
                    chain = " -> ".join(
                        self.index.taint_chain(target, self.kind))
                    self.report(
                        module, site.line, site.col,
                        f"call to `{target.qualname}` transitively reaches "
                        f"`{taint.origin}()` [{chain}]; {self.advice}")


@register
class TransitiveWallClockRule(_TaintRule):
    """DET009 — a helper chain ends at the host wall clock."""

    code = "DET009"
    name = "transitive-wall-clock"
    summary = "call reaches a wall-clock read through helper functions"
    kind = "wall"
    advice = ("simulated time comes from `Simulator.now`; if the helper is "
              "host-side on purpose, noqa its read line with DET001")


@register
class TransitiveAmbientRandomRule(_TaintRule):
    """DET010 — ambient global-RNG draws escape through a wrapper."""

    code = "DET010"
    name = "transitive-ambient-random"
    summary = "call reaches ambient random state through a wrapper"
    kind = "random"
    advice = ("route randomness through a named `RandomStreams` substream; "
              "if the wrapper is host-side on purpose, noqa its draw line "
              "with DET002")


@register
class HiddenProviderStateRule(ProjectRule):
    """CKPT001 — provider state no checkpoint-stage hook ever covers."""

    code = "CKPT001"
    name = "hidden-provider-state"
    summary = "provider attribute mutated outside any checkpoint-stage hook"

    def run(self) -> None:
        for cls in self.index.checkpointable_classes():
            if self.library_only and not cls.module.in_library:
                continue
            self._check_class(cls)

    def _reachable_methods(self, cls: ClassInfo,
                           roots: Iterable[str]) -> Set[str]:
        """Method names reachable from ``roots`` via ``self.x()`` calls."""
        hierarchy = self.index._hierarchy(cls)
        reachable: Set[str] = set()
        stack = [name for name in roots
                 if any(name in a.methods for a in hierarchy)]
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for ancestor in hierarchy:
                info = ancestor.methods.get(name)
                if info is None:
                    continue
                for site in info.calls:
                    if site.self_attr is not None \
                            and site.self_attr not in reachable:
                        stack.append(site.self_attr)
                break                    # nearest override wins
        return reachable

    def _check_class(self, cls: ClassInfo) -> None:
        hierarchy = self.index._hierarchy(cls)
        stage_reachable = self._reachable_methods(cls, STAGE_HOOKS)
        init_reachable = self._reachable_methods(cls, ("__init__",))
        covered: Set[str] = set()
        events: List[AttrEvent] = []
        for ancestor in hierarchy:
            for event in ancestor.attr_events:
                events.append(event)
                if event.method in stage_reachable:
                    covered.add(event.attr)
        flagged: Set[str] = set()
        for event in sorted(events, key=lambda e: (e.line, e.col)):
            if not event.is_write or event.attr in covered \
                    or event.attr in flagged:
                continue
            if event.method in init_reachable \
                    or event.method in stage_reachable:
                continue
            flagged.add(event.attr)
            self.report(
                cls.module, event.line, event.col,
                f"`self.{event.attr}` is mutated in "
                f"`{cls.name}.{event.method}` but no checkpoint-stage hook "
                f"of `{cls.name}` ever reads or writes it; a snapshot will "
                f"silently drop this state — cover it in a stage hook or "
                f"mark the write `# repro: noqa=CKPT001`")


@register
class StoredGeneratorRule(ProjectRule):
    """CKPT002 — generator objects stored on a provider are unserializable."""

    code = "CKPT002"
    name = "stored-generator"
    summary = "generator/coroutine object stored on a provider attribute"

    def run(self) -> None:
        for cls in self.index.checkpointable_classes():
            if self.library_only and not cls.module.in_library:
                continue
            for event in cls.attr_events:
                if event.value is None:
                    continue
                why = self._generator_value(cls, event.value)
                if why is not None:
                    self.report(
                        cls.module, event.line, event.col,
                        f"`self.{event.attr}` holds {why}; generator state "
                        f"cannot be serialized across the suspend->save "
                        f"boundary — store plain data and rebuild the "
                        f"iterator on restore")

    def _generator_value(self, cls: ClassInfo,
                         value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.GeneratorExp):
            return "a generator expression"
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name) and func.id == "iter":
            return "a live iterator (`iter(...)`)"
        target: Optional[FunctionInfo] = None
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "self":
            target = self.index._hierarchy_method(cls, func.attr)
        else:
            dotted = cls.module.imports.resolve(func)
            if dotted is None and isinstance(func, ast.Name):
                local = cls.module.functions.get(func.id)
                if local is not None and local.cls is None:
                    target = local
            elif dotted is not None:
                resolved = self.index.resolve_dotted(dotted)
                if isinstance(resolved, FunctionInfo):
                    target = resolved
        if target is not None and target.is_generator:
            return f"the generator object returned by `{target.qualname}()`"
        return None


@register
class SaveRestoreParityRule(ProjectRule):
    """CKPT003 — a save-side override demands restore-side parity."""

    code = "CKPT003"
    name = "save-restore-parity"
    summary = "provider overrides save without restore-side parity"

    _PAIRS = (("stage_save", ("stage_resume", "stage_abort", "restore")),
              ("serialize", ("restore",)))

    def run(self) -> None:
        for cls in self.index.checkpointable_classes():
            if self.library_only and not cls.module.in_library:
                continue
            defined: Set[str] = set()
            for ancestor in self.index._hierarchy(cls):
                if ancestor.name == "Checkpointable":
                    continue             # the root's no-op defaults don't count
                defined |= set(ancestor.methods)
            for save_hook, restore_hooks in self._PAIRS:
                if save_hook in cls.methods \
                        and not (defined & set(restore_hooks)):
                    node = cls.methods[save_hook].node
                    self.report(
                        cls.module, node.lineno, node.col_offset,
                        f"`{cls.name}` overrides `{save_hook}` without "
                        f"restore-side parity; implement one of "
                        f"{'/'.join(restore_hooks)} so captured state can "
                        f"be re-applied or rolled back")


def all_project_codes() -> List[str]:
    return sorted(PROJECT_RULES)


def check_project(entries: Sequence[Tuple[str, str, ast.AST]],
                  select: Optional[Iterable[str]] = None) -> List[Violation]:
    """Run every (selected) project rule over the parsed entries.

    Returns noqa-filtered violations; ``entries`` is a sequence of
    ``(path, source, tree)`` triples, typically produced by
    :func:`repro.lint.engine.check_sources`.
    """
    wanted = set(select) if select is not None else None
    codes = [code for code in sorted(PROJECT_RULES)
             if wanted is None or code in wanted]
    if not codes:
        return []
    index = ProjectIndex(entries)
    tables = {module.path: module.suppress for module in index.modules}
    violations: List[Violation] = []
    for code in codes:
        rule = PROJECT_RULES[code](index)
        rule.run()
        violations.extend(rule.violations)
    kept: List[Violation] = []
    by_path: Dict[str, List[Violation]] = {}
    for v in violations:
        by_path.setdefault(v.path, []).append(v)
    for path, group in by_path.items():
        kept.extend(apply_suppressions(group, tables.get(path, {})))
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept

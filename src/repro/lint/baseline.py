"""Baseline ratchet for the lint gate: tolerate old findings, block new.

Adopting a new rule on an existing tree usually surfaces findings that
are deliberate (host-side boundaries, baseline models).  The preferred
treatment is a ``# repro: noqa=CODE`` with a comment at the site; when a
finding spans generated or third-party-ish code where editing is
unattractive, a baseline file records it instead::

    repro lint --write-baseline lint-baseline.json src/
    repro lint --baseline lint-baseline.json src/        # exit 1 only on NEW

Entries are keyed by ``path:code:message`` — deliberately *not* by line
number, so unrelated edits that shift a finding up or down do not
invalidate the baseline, while any new instance of the same rule in the
same file (which produces a different message or exceeds the recorded
count) still fails.  The ratchet only ever tightens: findings absent
from a run are dropped on the next ``--write-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.lint.engine import Violation

_FORMAT = "repro-lint-baseline/1"


def baseline_key(violation: Violation) -> str:
    return f"{violation.path}:{violation.code}:{violation.message}"


def write_baseline(path: str, violations: Sequence[Violation]) -> int:
    """Record ``violations`` as the new baseline; returns the entry count."""
    counts = Counter(baseline_key(v) for v in violations)
    payload = {
        "format": _FORMAT,
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
    return sum(counts.values())


def load_baseline(path: str) -> Dict[str, int]:
    """Load a baseline file; raises ``ValueError`` on a malformed one."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise ValueError(f"{path} is not a {_FORMAT} file")
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: missing 'entries' table")
    out: Dict[str, int] = {}
    for key, count in entries.items():
        if not isinstance(key, str) or not isinstance(count, int) \
                or count < 1:
            raise ValueError(f"{path}: bad entry {key!r}: {count!r}")
        out[key] = count
    return out


def apply_baseline(violations: Iterable[Violation],
                   baseline: Dict[str, int]
                   ) -> Tuple[List[Violation], int]:
    """Split findings into (new, suppressed-count) against a baseline.

    Counter semantics: a baseline entry with count N absorbs at most N
    findings with that key; the N+1th is new and fails the gate.
    """
    budget = Counter(baseline)
    fresh: List[Violation] = []
    suppressed = 0
    for v in violations:
        key = baseline_key(v)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(v)
    return fresh, suppressed

"""Runtime determinism checkers: event-race detection and shadow runs.

Static lint cannot see every ordering dependence, so two dynamic checks
back it up:

* :class:`EventRaceDetector` — opt-in on :class:`~repro.sim.core.Simulator`
  (via :meth:`Simulator.enable_race_detection`).  When two events that were
  scheduled *independently* pop at an identical ``(time, priority)`` and
  their callbacks touch the same component, their relative order is decided
  only by the heap's sequence-number tiebreak — i.e. by incidental program
  order.  That is a latent replay hazard and gets recorded as an
  :class:`EventRace`.  Events enqueued *while* the tied timestamp is being
  processed are causal descendants of an earlier event in the tie and are
  exempt: their order is forced, not incidental.

* :func:`shadow_run` — executes a scenario twice with equivalent but
  perturbed :class:`~repro.sim.random.RandomStreams` (the second run
  pre-creates every substream the first run requested, in reverse order)
  and compares caller-supplied digests.  Any dependence on stream creation
  order, ambient ``random`` state, or object identity (``id()``-keyed sets
  and dicts change between runs) shows up as a digest divergence.
"""

from __future__ import annotations

import hashlib
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.random import RandomStreams


# ---------------------------------------------------------------------------
# event-race detection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EventRace:
    """Two independently scheduled events tied on (time, priority) whose
    callbacks touch the same component."""

    time: int
    priority: int
    component: str
    events: Tuple[str, str]

    def format(self) -> str:
        return (f"t={self.time} prio={self.priority}: {self.events[0]} and "
                f"{self.events[1]} both touch {self.component}; their order "
                f"is decided only by scheduling sequence")


def _describe_callback(fn: Callable) -> str:
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{name.rsplit('.', 1)[-1]}"
    return name


def _describe_event(event) -> str:
    callbacks = getattr(event, "callbacks", None)
    if callbacks is None and callable(event):
        # Fast-path heap item: the simulator hands us the callback itself.
        return f"call({_describe_callback(event)})"
    names = ", ".join(_describe_callback(cb) for cb in callbacks or ()) \
        or "no-op"
    return f"{type(event).__name__}({names})"


def _component_label(obj: Any) -> str:
    name = getattr(obj, "name", None)
    if isinstance(name, str):
        return f"{type(obj).__name__}({name})"
    return type(obj).__name__


def _touched_components(event, _depth: int = 0) -> Dict[int, str]:
    """Objects an event's callbacks will read or mutate, keyed by identity.

    A *component* is any object reachable from a callback — as a bound
    method receiver or through closure cells — that carries a ``sim``
    attribute (every simulation component in this codebase does).  The
    :class:`~repro.sim.core.Simulator` itself is excluded: everything
    touches it.

    ``event`` is either an :class:`~repro.sim.core.Event` (legacy path,
    inspect its callbacks) or a fast-path callable (inspect it directly).
    """
    touched: Dict[int, str] = {}
    callbacks = getattr(event, "callbacks", None)
    if callbacks is None and callable(event):
        _collect_from_callable(event, touched, depth=0)
        return touched
    for cb in (callbacks or ()):
        _collect_from_callable(cb, touched, depth=0)
    return touched


def _collect_from_callable(fn: Callable, touched: Dict[int, str],
                           depth: int) -> None:
    if depth > 3:
        return
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        _maybe_add(owner, touched)
        fn = getattr(fn, "__func__", fn)
    closure = getattr(fn, "__closure__", None)
    for cell in closure or ():
        try:
            content = cell.cell_contents
        except ValueError:
            continue
        if isinstance(content, (types.FunctionType, types.MethodType)):
            _collect_from_callable(content, touched, depth + 1)
        else:
            _maybe_add(content, touched)


def _maybe_add(obj: Any, touched: Dict[int, str]) -> None:
    from repro.sim.core import Simulator

    if isinstance(obj, Simulator):
        return
    if hasattr(obj, "sim") and not isinstance(obj, type):
        touched[id(obj)] = _component_label(obj)


class EventRaceDetector:
    """Observes every popped event; records same-timestamp component races.

    Enable with ``sim.enable_race_detection()`` *before* running; inspect
    ``detector.races`` afterwards.  The detector never changes scheduling —
    it only watches.
    """

    def __init__(self, sim=None) -> None:
        self.races: List[EventRace] = []
        self.events_observed = 0
        self.sim = sim
        self._key: Optional[Tuple[int, int]] = None
        self._watermark = 0
        self._independent: List[Tuple[str, Dict[int, str]]] = []
        self._reported: set = set()

    def observe(self, when: int, priority: int, seq: int, event) -> None:
        """Called by the simulator just before an event is processed.

        ``event`` is the popped heap item: an Event on the legacy path, the
        scheduled callable itself on the fast path.
        """
        self.events_observed += 1
        key = (when, priority)
        if key != self._key:
            self._key = key
            self._independent = []
            # Anything enqueued after this point (seq above the watermark)
            # is a causal descendant of an event inside this tie.
            sim = self.sim if self.sim is not None else event.sim
            self._watermark = sim._seq
        elif seq > self._watermark:
            return
        desc = _describe_event(event)
        touched = _touched_components(event)
        for other_desc, other_touched in self._independent:
            overlap = touched.keys() & other_touched.keys()
            for comp_id in overlap:
                mark = (when, priority, comp_id)
                if mark in self._reported:
                    continue
                self._reported.add(mark)
                self.races.append(EventRace(
                    when, priority, touched[comp_id], (other_desc, desc)))
        self._independent.append((desc, touched))

    @property
    def race_count(self) -> int:
        return len(self.races)

    def report(self) -> str:
        if not self.races:
            return (f"no event races in {self.events_observed} events")
        lines = [r.format() for r in self.races]
        lines.append(f"{len(self.races)} races in "
                     f"{self.events_observed} events")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# shadow-run divergence checking
# ---------------------------------------------------------------------------

class RecordingStreams(RandomStreams):
    """A :class:`RandomStreams` that remembers the order of stream requests."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.requested: List[str] = []

    def stream(self, name: str):
        if name not in self._streams:
            self.requested.append(name)
        return super().stream(name)


class PerturbedStreams(RandomStreams):
    """Equivalent streams, created in a deliberately different order.

    Substream seeds are pure functions of ``(master_seed, name)``, so
    pre-creating every stream a previous run requested — in reverse order —
    must not change any draw sequence.  A scenario whose behaviour shifts
    under this perturbation depends on stream *creation order* (or on some
    channel outside ``RandomStreams`` entirely), which is exactly the bug
    the shadow run exists to catch.
    """

    def __init__(self, seed: int = 0,
                 warm_names: Optional[List[str]] = None) -> None:
        super().__init__(seed)
        for name in reversed(warm_names or []):
            super().stream(name)


@dataclass
class ShadowRunReport:
    """The outcome of one :func:`shadow_run` comparison."""

    digest_a: Any
    digest_b: Any
    streams_requested: List[str] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return self.digest_a != self.digest_b

    def format(self) -> str:
        if not self.diverged:
            return (f"shadow run converged over "
                    f"{len(self.streams_requested)} substreams")
        return (f"shadow run DIVERGED: {self.digest_a!r} != "
                f"{self.digest_b!r} — the scenario depends on stream "
                f"creation order, ambient randomness, or object identity")


def shadow_run(scenario: Callable[[RandomStreams], Any],
               seed: int = 0) -> ShadowRunReport:
    """Run ``scenario`` twice with equivalent-but-perturbed streams.

    ``scenario`` builds a fresh simulation from the given streams, runs it,
    and returns a comparable digest (e.g. ``experiment_digest(...)`` or
    :func:`trace_digest`).  A deterministic scenario yields identical
    digests; any divergence means hidden ordering dependence.
    """
    recording = RecordingStreams(seed)
    digest_a = scenario(recording)
    perturbed = PerturbedStreams(seed, warm_names=recording.requested)
    digest_b = scenario(perturbed)
    return ShadowRunReport(digest_a, digest_b,
                           streams_requested=list(recording.requested))


def trace_digest(tracer) -> str:
    """Stable hex digest of a :class:`~repro.obs.trace.Tracer`'s records."""
    h = hashlib.sha256()
    for record in tracer.records:
        h.update(repr((record.time, record.category,
                       sorted(record.fields.items()))).encode("utf-8"))
    return h.hexdigest()

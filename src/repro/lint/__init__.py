"""repro.lint — the determinism sanitizer.

The simulation kernel promises bit-for-bit reproducible runs
(:mod:`repro.sim.core`); this package enforces that promise two ways:

* **statically**, with an AST lint engine (:mod:`repro.lint.engine`) and a
  catalogue of repo-specific determinism rules (:mod:`repro.lint.rules`,
  codes ``DET001``–``DET007``), runnable as ``repro lint`` or via
  :func:`check_source` / :func:`check_paths`;
* **dynamically**, with an opt-in event-race detector and a shadow-run
  divergence checker (:mod:`repro.lint.runtime`).

See ``docs/determinism.md`` for the rule catalogue and rationale.
"""

from repro.lint.engine import (Violation, check_paths, check_source,
                               iter_python_files)
from repro.lint.rules import RULES, Rule, all_codes
from repro.lint.runtime import (EventRace, EventRaceDetector,
                                ShadowRunReport, shadow_run, trace_digest)

__all__ = [
    "Violation", "check_paths", "check_source", "iter_python_files",
    "RULES", "Rule", "all_codes",
    "EventRace", "EventRaceDetector", "ShadowRunReport", "shadow_run",
    "trace_digest",
]

"""repro.lint — the determinism and checkpoint-coverage sanitizer.

The simulation kernel promises bit-for-bit reproducible runs
(:mod:`repro.sim.core`) and the checkpoint pipeline promises that a
snapshot captures *all* provider state (:mod:`repro.checkpoint.pipeline`);
this package enforces both promises two ways:

* **statically**, with an AST lint engine (:mod:`repro.lint.engine`), a
  catalogue of per-file determinism rules (:mod:`repro.lint.rules`, codes
  ``DET001``–``DET008``), and a whole-program pass
  (:mod:`repro.lint.graph`) that builds a project-wide call graph to run
  interprocedural taint rules (``DET009``/``DET010``) and the
  checkpoint-coverage family (``CKPT001``–``CKPT003``) — runnable as
  ``repro lint`` or via :func:`check_source` / :func:`check_sources` /
  :func:`check_paths`;
* **dynamically**, with an opt-in event-race detector and a shadow-run
  divergence checker (:mod:`repro.lint.runtime`), plus a checkpoint
  state-diff sanitizer (:mod:`repro.lint.statecheck`) that attributes
  cross-checkpoint divergence to named provider fields.

Pre-existing findings can be ratcheted with a baseline file
(:mod:`repro.lint.baseline`) instead of blocking the gate.  See
``docs/static-analysis.md`` for the full rule catalogue and
``docs/determinism.md`` for the determinism rationale.
"""

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import (Violation, check_paths, check_source,
                               check_sources, iter_python_files)
from repro.lint.graph import (PROJECT_RULES, ProjectIndex, all_project_codes,
                              build_index, check_project)
from repro.lint.rules import RULES, Rule, all_codes
from repro.lint.runtime import (EventRace, EventRaceDetector,
                                ShadowRunReport, shadow_run, trace_digest)
from repro.lint.statecheck import (FieldDivergence, StateCheck,
                                   StateCheckReport, field_digests,
                                   fingerprint)

__all__ = [
    "Violation", "check_paths", "check_source", "check_sources",
    "iter_python_files",
    "RULES", "Rule", "all_codes",
    "PROJECT_RULES", "ProjectIndex", "all_project_codes", "build_index",
    "check_project",
    "apply_baseline", "load_baseline", "write_baseline",
    "EventRace", "EventRaceDetector", "ShadowRunReport", "shadow_run",
    "trace_digest",
    "FieldDivergence", "StateCheck", "StateCheckReport", "field_digests",
    "fingerprint",
]

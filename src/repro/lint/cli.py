"""The ``repro lint`` subcommand.

Exit codes follow pre-commit conventions: 0 clean, 1 violations found,
2 usage error (unknown rule code or missing path).
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence, TextIO

from repro.lint.engine import (check_source, iter_python_files, render_human,
                               render_json)
from repro.lint.rules import RULES, all_codes


def list_rules(out: TextIO) -> None:
    for code in all_codes():
        rule = RULES[code]
        scope = "src/repro only" if rule.library_only else "all code"
        out.write(f"  {code}  {rule.name:<24} {rule.summary} [{scope}]\n")


def run_lint(paths: Sequence[str], json_output: bool = False,
             select: Optional[str] = None,
             out: Optional[TextIO] = None) -> int:
    """Lint ``paths``; print a report; return the process exit code."""
    out = out if out is not None else sys.stdout
    selected = None
    if select:
        selected = [c.strip().upper() for c in select.split(",") if c.strip()]
        unknown = sorted(set(selected) - set(RULES))
        if unknown:
            out.write(f"unknown rule code(s): {', '.join(unknown)} "
                      f"(known: {', '.join(all_codes())})\n")
            return 2
    files = list(iter_python_files(paths))
    if not files:
        out.write(f"no python files found under: {', '.join(paths)}\n")
        return 2
    violations = []
    for f in files:
        violations.extend(check_source(f.read_text(encoding="utf-8"),
                                       path=str(f), select=selected))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    if json_output:
        out.write(render_json(violations, len(files)) + "\n")
    else:
        out.write(render_human(violations, len(files)) + "\n")
    return 1 if violations else 0

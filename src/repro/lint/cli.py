"""The ``repro lint`` subcommand.

Exit codes follow pre-commit conventions: 0 clean, 1 violations found,
2 usage error (unknown rule code, missing path, bad baseline file).

Beyond the per-file rules the CLI runs the whole-program pass
(:mod:`repro.lint.graph`) over every parsed file at once, supports
``--graph`` to dump the call graph / taint facts as JSON instead of
linting, and ``--baseline`` / ``--write-baseline`` for the ratchet
workflow (:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import json
import sys
from typing import List, Optional, Sequence, TextIO, Tuple

from repro.lint.baseline import (apply_baseline, load_baseline,
                                 write_baseline)
from repro.lint.engine import (check_sources, iter_python_files,
                               render_human, render_json)
from repro.lint.graph import PROJECT_RULES, build_index
from repro.lint.rules import RULES, all_codes


def _all_known_codes() -> List[str]:
    return sorted(set(RULES) | set(PROJECT_RULES))


def list_rules(out: TextIO) -> None:
    for code in _all_known_codes():
        rule = RULES.get(code) or PROJECT_RULES[code]
        scope = "src/repro only" if rule.library_only else "all code"
        kind = "project" if code in PROJECT_RULES else "file"
        out.write(f"  {code}  {rule.name:<24} {rule.summary} "
                  f"[{scope}; {kind}]\n")


def _read_pairs(paths: Sequence[str]) -> Tuple[List[Tuple[str, str]], int]:
    pairs: List[Tuple[str, str]] = []
    unreadable = 0
    for f in iter_python_files(paths):
        try:
            pairs.append((str(f), f.read_text(encoding="utf-8")))
        except OSError:
            unreadable += 1
    return pairs, unreadable


def dump_graph(paths: Sequence[str], out: Optional[TextIO] = None) -> int:
    """``repro lint --graph``: emit the project index as JSON."""
    out = out if out is not None else sys.stdout
    pairs, _ = _read_pairs(paths)
    if not pairs:
        out.write(f"no python files found under: {', '.join(paths)}\n")
        return 2
    entries = []
    for path, source in pairs:
        try:
            entries.append((path.replace("\\", "/"), source,
                            ast.parse(source, filename=path)))
        except SyntaxError:
            continue                     # the lint run reports these as E999
    index = build_index(entries)
    out.write(json.dumps(index.to_json(), indent=2, sort_keys=True) + "\n")
    return 0


def run_lint(paths: Sequence[str], json_output: bool = False,
             select: Optional[str] = None,
             baseline: Optional[str] = None,
             write_baseline_to: Optional[str] = None,
             out: Optional[TextIO] = None) -> int:
    """Lint ``paths``; print a report; return the process exit code."""
    out = out if out is not None else sys.stdout
    selected = None
    if select:
        selected = [c.strip().upper() for c in select.split(",") if c.strip()]
        unknown = sorted(set(selected) - set(_all_known_codes()))
        if unknown:
            out.write(f"unknown rule code(s): {', '.join(unknown)} "
                      f"(known: {', '.join(_all_known_codes())})\n")
            return 2
    pairs, unreadable = _read_pairs(paths)
    if not pairs and not unreadable:
        out.write(f"no python files found under: {', '.join(paths)}\n")
        return 2
    violations = check_sources(pairs, select=selected)
    if write_baseline_to is not None:
        count = write_baseline(write_baseline_to, violations)
        out.write(f"baseline written: {count} finding(s) recorded to "
                  f"{write_baseline_to}\n")
        return 0
    suppressed = 0
    if baseline is not None:
        try:
            entries = load_baseline(baseline)
        except ValueError as exc:
            out.write(f"{exc}\n")
            return 2
        violations, suppressed = apply_baseline(violations, entries)
    if json_output:
        out.write(render_json(violations, len(pairs)) + "\n")
    else:
        out.write(render_human(violations, len(pairs)) + "\n")
        if suppressed:
            out.write(f"({suppressed} baselined finding(s) suppressed "
                      f"by {baseline})\n")
    return 1 if violations else 0

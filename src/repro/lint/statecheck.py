"""Runtime checkpoint-coverage sanitizer: field-level provider state diffs.

The static ``CKPT`` rules (:mod:`repro.lint.graph`) reason about what a
provider's stage hooks *could* cover; this module measures what a live
checkpoint actually preserved.  A :class:`StateCheck` attached to a
:class:`~repro.checkpoint.pipeline.CheckpointPipeline` fingerprints
every registered provider's ``__dict__`` field-by-field the moment its
``suspend`` stage starts, and :meth:`StateCheck.verify` — called after
the pipeline has resumed (or after a rollback via ``abort()``) —
fingerprints again and attributes every divergence to a named field::

    pipeline = CheckpointPipeline(sim, providers)
    check = StateCheck(pipeline, ignore={"timings", "last_result"})
    ... drive the checkpoint ...
    report = check.verify()
    assert report.clean, report.format()

Divergence is not always a bug — ``stage_resume`` legitimately updates
result fields — which is why known-mutating fields are declared in
``ignore``.  What remains is exactly the signal the static pass hunts
for: state that changed across the suspend→resume window without any
stage hook accounting for it (CKPT001's hidden state, confirmed
dynamically), or state a rollback failed to restore.  Fingerprints
descend one level into dict/object-valued fields, so a report names
``buffers.rx`` rather than just ``buffers``.

The module is deliberately decoupled from the checkpoint package: the
observer duck-types on ``stage.value == "suspend"``, so importing
:mod:`repro.lint` never drags in the simulator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: recursion ceiling for structural fingerprints
_MAX_DEPTH = 4
#: fields deeper than this never get their own report line
_ATTR_DEPTH = 1
_REPR_LIMIT = 60


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------

def _clip(text: str) -> str:
    return text if len(text) <= _REPR_LIMIT else text[:_REPR_LIMIT - 3] + "..."


def _canonical(value, depth: int, seen: Set[int]) -> str:
    """A deterministic structural encoding of ``value``.

    Containers encode element-wise (sets sorted by element encoding so
    iteration order cannot leak in); objects encode as class name plus
    sorted ``__dict__``.  Recursion is depth- and cycle-limited; beyond
    the limit only the type name survives, which still flags a swap of
    one deep object for another type.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return f"{type(value).__name__}:{value!r}"
    if isinstance(value, float):
        return f"float:{value.hex() if value == value else 'nan'}"
    if depth >= _MAX_DEPTH or id(value) in seen:
        return f"type:{type(value).__name__}"
    seen = seen | {id(value)}
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical(v, depth + 1, seen) for v in value)
        return f"{type(value).__name__}:[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(
            _canonical(v, depth + 1, seen) for v in value))
        return f"{type(value).__name__}:{{{inner}}}"
    if isinstance(value, dict):
        items = sorted(
            (_canonical(k, depth + 1, seen), _canonical(v, depth + 1, seen))
            for k, v in value.items())
        inner = ",".join(f"{k}={v}" for k, v in items)
        return f"dict:{{{inner}}}"
    attrs = getattr(value, "__dict__", None)
    if isinstance(attrs, dict):
        inner = ",".join(
            f"{k}={_canonical(v, depth + 1, seen)}"
            for k, v in sorted(attrs.items()))
        return f"{type(value).__name__}:{{{inner}}}"
    qualname = getattr(value, "__qualname__", None)
    if qualname is not None:                     # functions, methods, classes
        return f"{type(value).__name__}:{qualname}"
    return f"{type(value).__name__}:?"


def fingerprint(value) -> str:
    """Short deterministic digest of a value's structural state."""
    encoded = _canonical(value, 0, set())
    return hashlib.sha256(encoded.encode("utf-8", "replace")).hexdigest()[:12]


def _summary(value) -> str:
    """A short human-readable rendering for report lines."""
    try:
        text = repr(value)
    except Exception:                            # repr may raise mid-mutation
        text = f"<unreprable {type(value).__name__}>"
    return _clip(text)


def field_digests(obj) -> Dict[str, Tuple[str, str]]:
    """``field path -> (digest, summary)`` for ``obj.__dict__``.

    Dict- and object-valued fields contribute one extra level of
    ``field.sub`` entries so divergence attributes to the innermost
    named field that moved.
    """
    out: Dict[str, Tuple[str, str]] = {}
    attrs = getattr(obj, "__dict__", None) or {}
    for name, value in attrs.items():
        out[str(name)] = (fingerprint(value), _summary(value))
        sub = value.__dict__ if hasattr(value, "__dict__") else (
            value if isinstance(value, dict) else None)
        if isinstance(sub, dict):
            for key, subvalue in sub.items():
                if isinstance(key, str):
                    out[f"{name}.{key}"] = (fingerprint(subvalue),
                                            _summary(subvalue))
    return out


# ---------------------------------------------------------------------------
# the sanitizer
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FieldDivergence:
    """One provider field whose state differs across the checkpoint."""

    provider: str
    field: str                  # possibly nested: ``buffers.rx``
    before: str                 # summary at suspend start
    after: str                  # summary at verify time

    def format(self) -> str:
        return (f"{self.provider}.{self.field}: "
                f"{self.before} -> {self.after}")


@dataclass
class StateCheckReport:
    """Outcome of one :meth:`StateCheck.verify` pass."""

    divergences: List[FieldDivergence]
    providers_checked: List[str]

    @property
    def clean(self) -> bool:
        return not self.divergences

    def fields(self) -> List[str]:
        """``provider.field`` strings, the assertion-friendly view."""
        return [f"{d.provider}.{d.field}" for d in self.divergences]

    def format(self) -> str:
        if self.clean:
            checked = ", ".join(self.providers_checked) or "none"
            return f"state check clean (providers: {checked})"
        lines = [f"{len(self.divergences)} field(s) diverged across "
                 f"the checkpoint:"]
        lines += [f"  {d.format()}" for d in self.divergences]
        return "\n".join(lines)


class StateCheck:
    """Attach to a pipeline; fingerprint providers across the checkpoint.

    Registration appends an observer to ``pipeline.stage_observers``;
    the observer duck-types on ``stage.value`` so this module never
    imports the checkpoint package.  ``ignore`` entries are field names
    (``"last_result"``), nested paths (``"remus.pending"``), or
    provider-scoped paths (``"domain.node0:last_result"``); ignoring a
    field also ignores everything beneath it.
    """

    def __init__(self, pipeline, ignore: Iterable[str] = ()) -> None:
        self.pipeline = pipeline
        self.ignore: Set[str] = set(ignore)
        self._before: Dict[str, Dict[str, Tuple[str, str]]] = {}
        pipeline.stage_observers.append(self._observe)

    def detach(self) -> None:
        """Remove the observer from the pipeline."""
        try:
            self.pipeline.stage_observers.remove(self._observe)
        except ValueError:
            pass

    # ------------------------------------------------------------- capture

    def _observe(self, stage, provider) -> None:
        if getattr(stage, "value", stage) == "suspend":
            self._before[provider.name] = field_digests(provider)

    def captured(self) -> List[str]:
        """Names of providers with a recorded pre-suspend fingerprint."""
        return sorted(self._before)

    # ------------------------------------------------------------- verdict

    def _ignored(self, provider: str, path: str) -> bool:
        candidates = {path, f"{provider}:{path}"}
        head = path.split(".", 1)[0]
        candidates |= {head, f"{provider}:{head}"}
        return bool(candidates & self.ignore)

    def verify(self) -> StateCheckReport:
        """Diff every captured provider's state against its current state.

        Call after the pipeline has completed ``resume`` (or after a
        rollback via ``abort()``).  Divergence attributes to the
        innermost recorded field path: if ``buffers.rx`` moved, the
        report names it instead of the enclosing ``buffers``.
        """
        divergences: List[FieldDivergence] = []
        checked: List[str] = []
        for provider in self.pipeline.providers:
            name = provider.name
            before = self._before.get(name)
            if before is None:
                continue
            checked.append(name)
            after = field_digests(provider)
            divergences.extend(self._diff(name, before, after))
        return StateCheckReport(divergences=divergences,
                                providers_checked=checked)

    def _diff(self, provider: str,
              before: Dict[str, Tuple[str, str]],
              after: Dict[str, Tuple[str, str]]) -> List[FieldDivergence]:
        moved: List[str] = []
        for path in sorted(set(before) | set(after)):
            if before.get(path, (None,))[0] != after.get(path, (None,))[0]:
                moved.append(path)
        moved_set = set(moved)
        # Attribution before ignore filtering, so ignoring ``field.sub``
        # also silences the parent divergence it explains.  A field
        # present only on one side (added/removed wholesale) is reported
        # as itself; one that mutated internally is reported by its
        # innermost recorded sub-path instead.
        out: List[FieldDivergence] = []
        for path in moved:
            if "." in path:
                parent = path.split(".", 1)[0]
                if parent not in before or parent not in after:
                    continue            # the parent line tells the story
            elif path in before and path in after and any(
                    other.startswith(path + ".") for other in moved_set):
                continue                # a child names the divergence
            if self._ignored(provider, path):
                continue
            out.append(FieldDivergence(
                provider=provider, field=path,
                before=before.get(path, (None, "<absent>"))[1],
                after=after.get(path, (None, "<absent>"))[1]))
        return out

"""The lint engine: file walking, parsing, suppressions, output.

The engine is rule-agnostic: it parses each file once, builds a
:class:`LintContext` (source, import map, suppression table), and hands the
tree to every enabled rule from :data:`repro.lint.rules.RULES`.  Violations
on a line carrying ``# repro: noqa`` (all codes) or
``# repro: noqa=DET001,DET004`` (listed codes) are dropped; for multiline
statements and decorated definitions the pragma applies to the whole
statement span, so it may sit on any physical line of the statement.

:func:`check_paths` / :func:`check_sources` additionally run the
whole-program rules from :mod:`repro.lint.graph` (codes ``DET009``/
``DET010`` and the ``CKPT`` family), which need every file's AST at once;
:func:`check_source` stays per-file by construction.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple)

#: directories never descended into when walking a tree
SKIP_DIRS = {"__pycache__", ".git", ".hg", "build", "dist", "node_modules"}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*=\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?")

#: pseudo-code for files the parser rejects
PARSE_ERROR_CODE = "E999"


@dataclass(frozen=True)
class Violation:
    """One lint finding, pinned to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


class ImportMap:
    """Resolves local names to the dotted module path they were bound from.

    ``import time as t`` maps ``t -> time``; ``from datetime import datetime``
    maps ``datetime -> datetime.datetime``.  Rules use this to recognise
    calls like ``perf_counter()`` regardless of import spelling.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.names[local] = alias.name if alias.asname \
                        else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None if unknown."""
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base else None
        return None


class LintContext:
    """Everything a rule may consult about the file being linted."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        self.violations: List[Violation] = []

    @property
    def in_library(self) -> bool:
        """True for files under the ``repro`` package itself."""
        return "src/repro/" in self.path or self.path.startswith("repro/")

    def add(self, code: str, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0) + 1, code, message))


def _noqa_table(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (None means all codes)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        table[i] = (None if codes is None else
                    {c.strip() for c in codes.split(",")})
    return table


def _merge_suppression(table: Dict[int, Optional[Set[str]]],
                       lines: Iterable[int], span: range) -> None:
    """Spread the noqa entries found on ``lines`` over every line in ``span``."""
    blanket = any(table.get(i, ()) is None for i in lines)
    codes: Set[str] = set()
    if not blanket:
        for i in lines:
            codes |= table.get(i) or set()
    for i in span:
        if blanket or table.get(i, set()) is None:
            table[i] = None
        else:
            table[i] = (table.get(i) or set()) | codes


def suppression_table(source: str,
                      tree: Optional[ast.AST] = None
                      ) -> Dict[int, Optional[Set[str]]]:
    """Line -> suppressed codes, with statement-span expansion.

    A ``# repro: noqa`` pragma anywhere inside a *simple* multiline
    statement (an assignment or call continued across lines) covers the
    whole statement, and a pragma on a decorator or signature line of a
    ``def``/``class`` covers the header span down to the first body
    statement.  Compound-statement bodies are never expanded into — a
    pragma inside a function suppresses only its own statement.
    """
    table = _noqa_table(source)
    if tree is None or not table:
        return table
    pragma_lines = set(table)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            start = min([d.lineno for d in node.decorator_list]
                        + [node.lineno])
            end = (node.body[0].lineno - 1) if node.body else node.lineno
        elif isinstance(node, ast.stmt) and not hasattr(node, "body"):
            start = node.lineno
            end = node.end_lineno or node.lineno
        else:
            continue
        if end <= start:
            continue
        span = range(start, end + 1)
        hits = pragma_lines.intersection(span)
        if hits:
            _merge_suppression(table, hits, span)
    return table


def apply_suppressions(violations: Iterable[Violation],
                       table: Dict[int, Optional[Set[str]]]
                       ) -> List[Violation]:
    """Drop violations whose line carries a matching noqa entry."""
    kept = []
    for v in violations:
        codes = table.get(v.line, ())
        if codes is None or v.code in codes:       # None == blanket noqa
            continue
        kept.append(v)
    return kept


def _run_file_rules(ctx: LintContext,
                    wanted: Optional[Set[str]]) -> List[Violation]:
    """Per-file rules over one parsed tree, noqa already applied."""
    from repro.lint.rules import RULES

    for code, rule_cls in RULES.items():
        if wanted is not None and code not in wanted:
            continue
        if rule_cls.library_only and not ctx.in_library:
            continue
        rule_cls(ctx).run()
    return apply_suppressions(ctx.violations,
                              suppression_table(ctx.source, ctx.tree))


def check_source(source: str, path: str = "<string>",
                 select: Optional[Iterable[str]] = None) -> List[Violation]:
    """Lint one source string as if it lived at ``path``.

    ``select`` restricts the run to the given rule codes; the default runs
    every registered per-file rule.  Whole-program rules (``DET009``+,
    ``CKPT``) need the full project and only run under
    :func:`check_sources` / :func:`check_paths`.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path.replace("\\", "/"), exc.lineno or 0,
                          (exc.offset or 0), PARSE_ERROR_CODE,
                          f"syntax error: {exc.msg}")]
    ctx = LintContext(path, source, tree)
    wanted = set(select) if select is not None else None
    kept = _run_file_rules(ctx, wanted)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept


def check_sources(pairs: Sequence[Tuple[str, str]],
                  select: Optional[Iterable[str]] = None,
                  project: bool = True) -> List[Violation]:
    """Lint ``(path, source)`` pairs: per-file rules plus the project pass.

    This is the full analysis :func:`check_paths` and the CLI run — every
    per-file rule over each tree, then the whole-program graph rules from
    :mod:`repro.lint.graph` over all trees at once.  Trees are parsed
    exactly once and shared between the two passes.
    """
    wanted = set(select) if select is not None else None
    violations: List[Violation] = []
    parsed: List[Tuple[str, str, ast.AST]] = []
    for path, source in pairs:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            violations.append(Violation(
                path.replace("\\", "/"), exc.lineno or 0, (exc.offset or 0),
                PARSE_ERROR_CODE, f"syntax error: {exc.msg}"))
            continue
        ctx = LintContext(path, source, tree)
        violations.extend(_run_file_rules(ctx, wanted))
        parsed.append((ctx.path, source, tree))
    if project and parsed:
        from repro.lint.graph import PROJECT_RULES, check_project

        if wanted is None or wanted & set(PROJECT_RULES):
            violations.extend(check_project(parsed, select=wanted))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories)."""
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                yield p
        elif p.is_dir():
            for f in sorted(p.rglob("*.py")):
                parts = set(f.parts)
                if parts & SKIP_DIRS or any(part.endswith(".egg-info")
                                            for part in f.parts):
                    continue
                yield f


def check_paths(paths: Sequence[str],
                select: Optional[Iterable[str]] = None,
                project: bool = True) -> List[Violation]:
    """Lint every python file under ``paths``; returns sorted violations.

    Runs the per-file rules *and* the whole-program graph rules (pass
    ``project=False`` for the old per-file-only behaviour).
    """
    violations: List[Violation] = []
    pairs: List[Tuple[str, str]] = []
    for f in iter_python_files(paths):
        try:
            pairs.append((str(f), f.read_text(encoding="utf-8")))
        except OSError as exc:
            violations.append(Violation(str(f), 0, 0, PARSE_ERROR_CODE,
                                        f"unreadable: {exc}"))
    violations.extend(check_sources(pairs, select=select, project=project))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def render_human(violations: Sequence[Violation],
                 files_scanned: int) -> str:
    lines = [v.format() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun} in {files_scanned} files")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_scanned: int) -> str:
    counts: Dict[str, int] = {}
    for v in violations:
        counts[v.code] = counts.get(v.code, 0) + 1
    return json.dumps({
        "files_scanned": files_scanned,
        "violation_count": len(violations),
        "counts_by_code": counts,
        "violations": [v.to_json() for v in violations],
    }, indent=2, sort_keys=True)

"""The lint engine: file walking, parsing, suppressions, output.

The engine is rule-agnostic: it parses each file once, builds a
:class:`LintContext` (source, import map, suppression table), and hands the
tree to every enabled rule from :data:`repro.lint.rules.RULES`.  Violations
on a line carrying ``# repro: noqa`` (all codes) or
``# repro: noqa=DET001,DET004`` (listed codes) are dropped.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: directories never descended into when walking a tree
SKIP_DIRS = {"__pycache__", ".git", ".hg", "build", "dist", "node_modules"}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*=\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?")

#: pseudo-code for files the parser rejects
PARSE_ERROR_CODE = "E999"


@dataclass(frozen=True)
class Violation:
    """One lint finding, pinned to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


class ImportMap:
    """Resolves local names to the dotted module path they were bound from.

    ``import time as t`` maps ``t -> time``; ``from datetime import datetime``
    maps ``datetime -> datetime.datetime``.  Rules use this to recognise
    calls like ``perf_counter()`` regardless of import spelling.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.names[local] = alias.name if alias.asname \
                        else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None if unknown."""
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base else None
        return None


class LintContext:
    """Everything a rule may consult about the file being linted."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        self.violations: List[Violation] = []

    @property
    def in_library(self) -> bool:
        """True for files under the ``repro`` package itself."""
        return "src/repro/" in self.path or self.path.startswith("repro/")

    def add(self, code: str, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0) + 1, code, message))


def _noqa_table(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (None means all codes)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        table[i] = (None if codes is None else
                    {c.strip() for c in codes.split(",")})
    return table


def check_source(source: str, path: str = "<string>",
                 select: Optional[Iterable[str]] = None) -> List[Violation]:
    """Lint one source string as if it lived at ``path``.

    ``select`` restricts the run to the given rule codes; the default runs
    every registered rule.
    """
    from repro.lint.rules import RULES

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path.replace("\\", "/"), exc.lineno or 0,
                          (exc.offset or 0), PARSE_ERROR_CODE,
                          f"syntax error: {exc.msg}")]
    ctx = LintContext(path, source, tree)
    wanted = set(select) if select is not None else None
    for code, rule_cls in RULES.items():
        if wanted is not None and code not in wanted:
            continue
        if rule_cls.library_only and not ctx.in_library:
            continue
        rule_cls(ctx).run()
    suppressed = _noqa_table(source)
    kept = []
    for v in ctx.violations:
        codes = suppressed.get(v.line, ())
        if codes is None or v.code in codes:       # None == blanket noqa
            continue
        kept.append(v)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories)."""
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                yield p
        elif p.is_dir():
            for f in sorted(p.rglob("*.py")):
                parts = set(f.parts)
                if parts & SKIP_DIRS or any(part.endswith(".egg-info")
                                            for part in f.parts):
                    continue
                yield f


def check_paths(paths: Sequence[str],
                select: Optional[Iterable[str]] = None) -> List[Violation]:
    """Lint every python file under ``paths``; returns sorted violations."""
    violations: List[Violation] = []
    for f in iter_python_files(paths):
        try:
            source = f.read_text(encoding="utf-8")
        except OSError as exc:
            violations.append(Violation(str(f), 0, 0, PARSE_ERROR_CODE,
                                        f"unreadable: {exc}"))
            continue
        violations.extend(check_source(source, path=str(f), select=select))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def render_human(violations: Sequence[Violation],
                 files_scanned: int) -> str:
    lines = [v.format() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun} in {files_scanned} files")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_scanned: int) -> str:
    counts: Dict[str, int] = {}
    for v in violations:
        counts[v.code] = counts.get(v.code, 0) + 1
    return json.dumps({
        "files_scanned": files_scanned,
        "violation_count": len(violations),
        "counts_by_code": counts,
        "violations": [v.to_json() for v in violations],
    }, indent=2, sort_keys=True)

"""Rotational disk model with seek, rotational latency, and transfer time.

The model charges:

* ``seek_ns`` whenever the head must move (the requested LBA does not
  immediately follow the previous request), plus half a rotation;
* transfer time at ``transfer_bps`` bytes/second.

Requests are serviced one at a time through a FIFO queue, which is all the
evaluation workloads need (Bonnie++-style sequential phases, COW redo logs
with deliberate extra metadata seeks, background mirror synchronization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource
from repro.units import transfer_time_ns


@dataclass(frozen=True)
class DiskSpec:
    """Performance envelope of a disk (defaults: 10k RPM SCSI, pc3000)."""

    capacity_bytes: int = 146_000_000_000
    block_size: int = 4096
    seek_ns: int = 4_700_000            # average seek, 4.7 ms
    rotational_ns: int = 3_000_000      # half rotation at 10k RPM
    transfer_bps: int = 72_000_000      # sustained media rate, bytes/s

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.capacity_bytes <= 0:
            raise StorageError("disk geometry must be positive")


class Disk:
    """A single-spindle disk with a FIFO request queue."""

    def __init__(self, sim: Simulator, spec: Optional[DiskSpec] = None,
                 name: str = "disk") -> None:
        self.sim = sim
        self.spec = spec if spec is not None else DiskSpec()
        self.name = name
        self._head = Resource(sim, capacity=1)
        self._last_lba: int = -(10 ** 9)  # force an initial seek
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0
        self.busy_ns = 0

    @property
    def num_blocks(self) -> int:
        """Total addressable blocks."""
        return self.spec.capacity_bytes // self.spec.block_size

    def read(self, lba: int, nblocks: int = 1) -> Event:
        """Read ``nblocks`` starting at ``lba``; fires when data is in memory."""
        return self.sim.process(self._io(lba, nblocks, write=False))

    def write(self, lba: int, nblocks: int = 1) -> Event:
        """Write ``nblocks`` starting at ``lba``; fires when on the platter."""
        return self.sim.process(self._io(lba, nblocks, write=True))

    def service_time_ns(self, lba: int, nblocks: int) -> int:
        """Time this request would take given the current head position."""
        t = transfer_time_ns(nblocks * self.spec.block_size, self.spec.transfer_bps)
        if lba != self._last_lba:
            t += self.spec.seek_ns + self.spec.rotational_ns
        return t

    # -- snapshot/restore --------------------------------------------------------

    def serialize_state(self) -> dict:
        """Head position and counters, JSON-safe.

        The head position (``last_lba``) shapes every future request's
        service time, so restoring it is required for a restored world's
        I/O timings to match a replayed one's.  The disk must be idle —
        an in-flight request lives in coroutine frames the snapshot
        layer cannot capture.
        """
        if self._head.count or self._head.queued:
            raise StorageError(
                f"disk {self.name}: cannot serialize with I/O in flight")
        return {"last_lba": self._last_lba, "reads": self.reads,
                "writes": self.writes, "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written, "seeks": self.seeks,
                "busy_ns": self.busy_ns}

    def restore_state(self, state: dict) -> None:
        """Re-apply a :meth:`serialize_state` payload to this idle disk."""
        expected = ("last_lba", "reads", "writes", "bytes_read",
                    "bytes_written", "seeks", "busy_ns")
        if not isinstance(state, dict) or set(state) != set(expected):
            raise StorageError(f"disk {self.name}: malformed payload")
        if self._head.count or self._head.queued:
            raise StorageError(
                f"disk {self.name}: cannot restore with I/O in flight")
        self._last_lba = state["last_lba"]
        self.reads = state["reads"]
        self.writes = state["writes"]
        self.bytes_read = state["bytes_read"]
        self.bytes_written = state["bytes_written"]
        self.seeks = state["seeks"]
        self.busy_ns = state["busy_ns"]

    def _io(self, lba: int, nblocks: int, write: bool):
        if nblocks <= 0:
            raise StorageError(f"nblocks must be positive, got {nblocks}")
        if lba < 0 or lba + nblocks > self.num_blocks:
            raise StorageError(
                f"I/O beyond device: lba={lba} nblocks={nblocks} "
                f"device_blocks={self.num_blocks}")
        grant = self._head.request()
        yield grant
        try:
            duration = self.service_time_ns(lba, nblocks)
            if lba != self._last_lba:
                self.seeks += 1
            yield self.sim.timeout(duration)
            self.busy_ns += duration
            self._last_lba = lba + nblocks
            nbytes = nblocks * self.spec.block_size
            if write:
                self.writes += 1
                self.bytes_written += nbytes
            else:
                self.reads += 1
                self.bytes_read += nbytes
        finally:
            self._head.release(grant)

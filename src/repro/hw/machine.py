"""Physical machine assembly (Emulab "pc3000" class by default)."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.clocksync.clock import SystemClock
from repro.hw.cpu import CPU
from repro.hw.disk import Disk, DiskSpec
from repro.hw.tsc import Oscillator
from repro.sim.core import Simulator
from repro.sim.random import derived_rng
from repro.units import GB, MILLISECOND, MS


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description of a node class.

    Defaults model the paper's pc3000 nodes: single 3.0 GHz Xeon, 2 GB RAM,
    two 146 GB 10k RPM SCSI disks, 1 Gbps experiment NICs, and a 100 Mbps
    control interface.
    """

    cpu_freq_hz: int = 3_000_000_000
    memory_bytes: int = 2 * GB
    num_disks: int = 2
    disk: DiskSpec = field(default_factory=DiskSpec)
    max_drift_ppm: float = 25.0
    max_boot_clock_offset_ns: int = 250 * MS


class Machine:
    """One physical testbed node: CPU, disks, oscillator, system clock."""

    def __init__(self, sim: Simulator, name: str,
                 spec: Optional[MachineSpec] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.name = name
        self.spec = spec = spec if spec is not None else MachineSpec()
        rng = rng or derived_rng(f"machine.{name}")
        drift = rng.uniform(-spec.max_drift_ppm, spec.max_drift_ppm)
        offset = rng.randint(-spec.max_boot_clock_offset_ns,
                             spec.max_boot_clock_offset_ns)
        self.oscillator = Oscillator(sim, spec.cpu_freq_hz, drift_ppm=drift)
        self.clock = SystemClock(sim, self.oscillator, initial_offset_ns=offset)
        self.cpu = CPU(sim, name=f"{name}.cpu")
        self.disks = [Disk(sim, spec.disk, name=f"{name}.disk{i}")
                      for i in range(spec.num_disks)]
        #: network interfaces, attached by the testbed layer, keyed by name
        self.interfaces: Dict[str, object] = {}

    @property
    def system_disk(self) -> Disk:
        """The disk holding the node's OS image (disk 0)."""
        return self.disks[0]

    @property
    def scratch_disk(self) -> Disk:
        """The spare local disk (used for time-travel snapshot storage)."""
        return self.disks[-1]

    def __repr__(self) -> str:
        return f"<Machine {self.name}>"

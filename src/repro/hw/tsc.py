"""Hardware time-stamp counter (TSC) oscillator model.

Every machine owns an oscillator with a nominal frequency and a small
per-part frequency error (drift, in parts per million).  The TSC is the raw
tick count of that oscillator; system clocks and the guest's virtualized
time sources are derived from it.

The paper's transparency argument depends on controlling exactly this
resource: during a checkpoint the hypervisor restricts guest access to the
TSC so no real time can leak inside the temporal firewall.
"""

from __future__ import annotations

from repro.errors import ClockError
from repro.sim.core import Simulator
from repro.units import SECOND


class Oscillator:
    """A free-running counter with frequency error.

    The tick count at true time ``t`` is ``t * f * (1 + drift_ppm/1e6) / 1e9``
    plus an arbitrary boot offset.  Reads are monotonic by construction.
    """

    def __init__(self, sim: Simulator, freq_hz: int = 3_000_000_000,
                 drift_ppm: float = 0.0, boot_ticks: int = 0) -> None:
        if freq_hz <= 0:
            raise ClockError(f"oscillator frequency must be positive: {freq_hz}")
        self.sim = sim
        self.freq_hz = freq_hz
        self.drift_ppm = drift_ppm
        self.boot_ticks = boot_ticks
        self._effective_hz = freq_hz * (1.0 + drift_ppm * 1e-6)

    def read(self) -> int:
        """Current tick count."""
        return self.boot_ticks + int(self.sim.now * self._effective_hz / SECOND)

    def ticks_to_ns(self, ticks: int) -> int:
        """Convert a tick interval to nanoseconds of *nominal* time.

        This mirrors what an OS does: it calibrates against the nominal
        frequency, so the drift error is inherited by derived clocks.
        """
        return int(ticks * SECOND / self.freq_hz)

    def ns_to_ticks(self, ns: int) -> int:
        """Convert nominal nanoseconds to a tick interval."""
        return int(ns * self.freq_hz / SECOND)


class GuestTSC:
    """The guest-visible view of the host oscillator.

    The hypervisor can *restrict* access during a checkpoint: while
    restricted, reads return the frozen value captured at restriction time,
    so time interpolation inside the guest cannot observe checkpoint
    downtime.  (On real Xen this is done by trapping RDTSC; the observable
    contract is identical.)
    """

    def __init__(self, oscillator: Oscillator) -> None:
        self.oscillator = oscillator
        self._restricted = False
        self._frozen_value = 0

    @property
    def restricted(self) -> bool:
        """True while the hypervisor has fenced off the raw counter."""
        return self._restricted

    def restrict(self) -> None:
        """Freeze the guest-visible counter at its current value."""
        if self._restricted:
            raise ClockError("guest TSC already restricted")
        self._frozen_value = self.oscillator.read()
        self._restricted = True

    def unrestrict(self) -> None:
        """Resume pass-through reads, continuing from the frozen value.

        The hypervisor applies a TSC offset on real hardware so the guest
        never sees the gap; we model that by re-basing the counter.
        """
        if not self._restricted:
            raise ClockError("guest TSC is not restricted")
        self._restricted = False
        # Everything the hardware counted while frozen becomes invisible.
        self._hidden = getattr(self, "_hidden", 0)
        self._hidden += self.oscillator.read() - self._frozen_value

    def read(self) -> int:
        """Guest RDTSC."""
        if self._restricted:
            return self._frozen_value
        return self.oscillator.read() - getattr(self, "_hidden", 0)

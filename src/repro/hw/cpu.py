"""Fair-share CPU model (generalized processor sharing).

Jobs submit an amount of *work* (nanoseconds of dedicated CPU) and receive
an event that fires when the work completes.  Concurrently active jobs share
the CPU in proportion to their weights, so a job's wall-clock duration is
``work / (weight / total_weight)`` while the contention lasts.  This is the
standard fluid approximation of a proportional-share scheduler and is exactly
what the paper's Figure 5 experiment measures: background checkpoint
activity in dom0 steals CPU from the guest's compute loop.

The CPU supports :meth:`freeze` / :meth:`thaw`, used by the temporal
firewall: frozen jobs accumulate no progress, and the freeze interval is
invisible in their completed work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


@dataclass
class _Job:
    event: Event
    remaining: float          # ns of dedicated CPU still owed
    weight: float
    tag: str = ""
    frozen: bool = False


class CPU:
    """A single fair-share processor."""

    def __init__(self, sim: Simulator, name: str = "cpu") -> None:
        self.sim = sim
        self.name = name
        self._jobs: list[_Job] = []
        self._last_update = 0
        self._wakeup_version = 0
        self.total_busy_ns = 0.0

    # -- public API --------------------------------------------------------------

    def execute(self, work_ns: int, weight: float = 1.0,
                tag: str = "") -> Event:
        """Run ``work_ns`` of CPU work; the event fires on completion."""
        if work_ns < 0:
            raise SimulationError(f"negative work {work_ns}")
        if weight <= 0:
            raise SimulationError(f"weight must be positive, got {weight}")
        ev = Event(self.sim)
        if work_ns == 0:
            ev.succeed()
            return ev
        self._advance()
        self._jobs.append(_Job(ev, float(work_ns), weight, tag))
        self._reschedule()
        return ev

    def freeze(self, tag_prefix: str = "") -> None:
        """Suspend progress for all jobs whose tag starts with ``tag_prefix``."""
        self._advance()
        for job in self._jobs:
            if job.tag.startswith(tag_prefix):
                job.frozen = True
        self._reschedule()

    def thaw(self, tag_prefix: str = "") -> None:
        """Resume progress for jobs frozen with :meth:`freeze`."""
        self._advance()
        for job in self._jobs:
            if job.tag.startswith(tag_prefix):
                job.frozen = False
        self._reschedule()

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently making progress."""
        return sum(1 for j in self._jobs if not j.frozen)

    @property
    def load(self) -> float:
        """Total weight of running jobs."""
        return sum(j.weight for j in self._jobs if not j.frozen)

    def utilization(self) -> float:
        """Fraction of elapsed time the CPU has been busy."""
        self._advance()
        if self.sim.now == 0:
            return 0.0
        return self.total_busy_ns / self.sim.now

    # -- internals ----------------------------------------------------------------

    def _advance(self) -> None:
        """Account progress made since the last state change."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0:
            return
        running = [j for j in self._jobs if not j.frozen]
        if not running:
            return
        self.total_busy_ns += elapsed
        total_weight = sum(j.weight for j in running)
        finished: list[_Job] = []
        for job in running:
            job.remaining -= elapsed * (job.weight / total_weight)
            if job.remaining <= 1e-9:
                job.remaining = 0.0
                finished.append(job)
        for job in finished:
            self._jobs.remove(job)
            job.event.succeed()

    def _reschedule(self) -> None:
        """Schedule a wakeup at the next job-completion instant."""
        self._wakeup_version += 1
        version = self._wakeup_version
        running = [j for j in self._jobs if not j.frozen]
        if not running:
            return
        total_weight = sum(j.weight for j in running)
        horizon = min(j.remaining * total_weight / j.weight for j in running)
        delay = max(1, math.ceil(horizon))

        def wake() -> None:
            if version != self._wakeup_version:
                return  # stale: job set changed since this was scheduled
            self._advance()
            self._reschedule()

        self.sim.call_in(delay, wake)


class BackgroundLoad:
    """A repeating CPU consumer, used to model dom0 housekeeping activity.

    Every ``period_ns`` it submits ``burst_ns`` of weighted work — the
    "residual checkpoint-related activity" the paper blames for the 27 ms
    perturbation in Figure 5.
    """

    def __init__(self, cpu: CPU, burst_ns: int, period_ns: int,
                 weight: float = 1.0, tag: str = "background") -> None:
        self.cpu = cpu
        self.burst_ns = burst_ns
        self.period_ns = period_ns
        self.weight = weight
        self.tag = tag
        self._running = False
        self._process: Optional[object] = None

    def start(self) -> None:
        """Begin generating bursts."""
        if self._running:
            return
        self._running = True
        self._process = self.cpu.sim.process(self._run())

    def stop(self) -> None:
        """Stop after the current burst."""
        self._running = False

    def _run(self):
        while self._running:
            yield self.cpu.execute(self.burst_ns, self.weight, self.tag)
            yield self.cpu.sim.timeout(self.period_ns)

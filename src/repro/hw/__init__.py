"""Hardware models: CPUs, disks, oscillators, machines."""

from repro.hw.cpu import CPU, BackgroundLoad
from repro.hw.disk import Disk, DiskSpec
from repro.hw.machine import Machine, MachineSpec
from repro.hw.tsc import GuestTSC, Oscillator

__all__ = [
    "CPU", "BackgroundLoad", "Disk", "DiskSpec",
    "Machine", "MachineSpec", "GuestTSC", "Oscillator",
]

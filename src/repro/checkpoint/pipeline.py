"""The staged checkpoint pipeline — one engine behind every checkpointer.

The paper's coordinated checkpoint (§4.3–4.4) is a fixed sequence of
stages; what differs between the transparent checkpoint, the baselines,
and time-travel capture is only *which subsystems participate* and *who
drives the stages between barriers*.  This module factors that sequence
into an explicit engine:

    prepare → precopy → quiesce → suspend → save → branch → resume

over a registry of :class:`Checkpointable` providers.  A provider wraps
one subsystem that holds checkpointable state — a guest domain, a delay
node's Dummynet pipes, a branching store, a disciplined clock — and
implements only the stages it participates in.  The engine owns the
cross-cutting semantics the old monoliths could not express:

* **per-stage timing** — every (stage, provider) step is timed and
  emitted as a :class:`~repro.obs.trace.SpanRecord` under category
  ``checkpoint.stage``, with the pipeline's session name as the span's
  track — so a 10-node coordinated checkpoint exports as ten per-node
  stage timelines (see :mod:`repro.obs.export`);
* **rollback** — :meth:`CheckpointPipeline.abort` walks providers in
  reverse registration order, returning every subsystem to running state
  (the second phase of the coordinator's two-phase abort);
* **suspend policies** — the "when do I fire my suspend timer" decision
  (:class:`DeadlineSuspend`, :class:`ImmediateSuspend`,
  :class:`BoundedSkewRetrySuspend`) is pluggable instead of hard-coded
  in the node agent.

Stage hooks may be plain methods (zero simulated time) or generators
(driven inside a sim process); the engine accepts both, so metadata-only
stages like ``branch`` cost nothing and cannot perturb event order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CheckpointError, FirewallViolation, StorageError
from repro.obs.trace import NULL_SPAN, Tracer
from repro.sim.core import Simulator
from repro.units import MS, US, transfer_time_ns


class Stage(enum.Enum):
    """The pipeline's stages, in execution order.

        >>> [s.value for s in Stage]
        ['prepare', 'precopy', 'quiesce', 'suspend', 'save', 'branch', 'resume']
    """

    PREPARE = "prepare"      # bookkeeping before any work
    PRECOPY = "precopy"      # live copy while the subsystem runs
    QUIESCE = "quiesce"      # stop I/O: disconnect NICs, drain block devices
    SUSPEND = "suspend"      # stop execution and time (firewall / freeze)
    SAVE = "save"            # serialize state while frozen
    BRANCH = "branch"        # fork storage at the frozen instant (§4.5)
    RESUME = "resume"        # reverse everything; back to running


STAGES: Tuple[Stage, ...] = tuple(Stage)
_STAGE_INDEX: Dict[Stage, int] = {s: i for i, s in enumerate(STAGES)}


class StageFailed(CheckpointError):
    """A provider failed inside a stage; carries where and who.

        >>> err = StageFailed(Stage.SAVE, "domain.node0",
        ...                   CheckpointError("sink offline"))
        >>> (err.stage.value, err.provider)
        ('save', 'domain.node0')
    """

    def __init__(self, stage: Stage, provider: str, cause: BaseException) -> None:
        super().__init__(f"{provider}: {stage.value} failed: {cause}")
        self.stage = stage
        self.provider = provider
        self.cause = cause


@dataclass(frozen=True)
class StageTiming:
    """How long one provider spent in one stage.

        >>> StageTiming("save", "domain.node0", 100, 25).duration_ns
        25
    """

    stage: str
    provider: str
    started_at_ns: int
    duration_ns: int


@dataclass(frozen=True)
class AgentFailure:
    """One agent's structured report of a failed stage.

        >>> AgentFailure("node3", "save", "disk fault", epoch=2).node
        'node3'
    """

    node: str
    stage: str
    error: str
    #: coordinator round the failure belongs to (-1: not round-tagged)
    epoch: int = -1


@dataclass(frozen=True)
class CheckpointFailure:
    """Outcome of a checkpoint that ended in a coordinated rollback.

    Returned by the coordinator instead of a
    :class:`~repro.checkpoint.coordinator.CoordinatedResult` when a stage
    barrier timed out or an agent reported a failure.  ``missing`` names
    the participants that never reached the failed barrier;
    ``rolled_back`` names those that acknowledged the abort round.

        >>> failure = CheckpointFailure(
        ...     session="ckpt", stage="save", reason="barrier timeout",
        ...     missing=("node3",), agent_failures=(), rolled_back=("node0",),
        ...     wall_duration_ns=1000)
        >>> failure.ok
        False
    """

    session: str
    stage: str
    reason: str
    missing: Tuple[str, ...]
    agent_failures: Tuple[AgentFailure, ...]
    rolled_back: Tuple[str, ...]
    wall_duration_ns: int
    #: subset of ``missing`` the bus or coordinator believes is dead
    #: (exhausted retransmits / detached agent), not merely slow
    suspected_dead: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return False


class Checkpointable:
    """Base provider: override the stage hooks you participate in.

    A hook may be a plain method (returns ``None``; zero simulated time)
    or a generator (the engine drives it with ``yield from``).  The
    default hooks do nothing, so a provider only implements the stages
    where its subsystem holds state.  ``stage_abort`` must roll the
    subsystem back to running state from *any* partial progress and be
    idempotent — it is the unit of the coordinator's rollback round.

    Beyond the staged protocol, a provider that owns restorable state
    implements the DMTCP-style serialization pair (see
    :mod:`repro.checkpoint.snapshot` and docs/snapshots.md):

    * :meth:`serialize` returns the provider's full state as a
      JSON-serializable dict (taken at a quiescent instant);
    * :meth:`restore` re-applies a payload previously produced by
      ``serialize`` to a freshly built, not-yet-run subsystem;
    * :attr:`SCHEMA_VERSION` stamps the payload layout — the snapshot
      store refuses to restore a payload whose recorded version differs
      from the live provider's (never silently reinterpret old state).

    Lint rule CKPT003 enforces the pairing: overriding ``serialize``
    without ``restore`` (or ``stage_save`` without a restore-side hook)
    is a hard error in ``src/repro/checkpoint/`` and ``src/repro/net/``.

        >>> class Bell(Checkpointable):
        ...     name = "bell"
        ...     rang = 0
        ...     def stage_suspend(self):
        ...         self.rang += 1
        >>> bell = Bell()
        >>> bell.stage_suspend(); bell.rang    # other stages stay no-ops
        1
        >>> bell.stage_save() is None
        True
        >>> bell.serialize()
        {}
    """

    name = "checkpointable"

    #: payload layout version written into every snapshot manifest; bump
    #: whenever the dict returned by ``serialize`` changes incompatibly
    SCHEMA_VERSION = 1

    def snapshot_cost_bytes(self) -> int:
        """Storage cost of checkpointing this provider's state now."""
        return 0

    def serialize(self) -> dict:
        """This provider's full state as a JSON-serializable dict.

        The base provider is stateless, so the payload is empty; any
        provider with state overrides both this and :meth:`restore`.
        """
        return {}

    def restore(self, snapshot: dict) -> None:
        """Re-apply a payload produced by :meth:`serialize`.

        The base provider accepts only the empty payload it produces; a
        non-empty payload reaching it means provider registries were
        mismatched, which must fail loudly rather than drop state.
        """
        if snapshot:
            raise CheckpointError(
                f"{self.name}: stateless provider given a non-empty "
                f"snapshot payload ({sorted(snapshot)})")

    def stage_prepare(self):
        return None

    def stage_precopy(self):
        return None

    def stage_quiesce(self):
        return None

    def stage_suspend(self):
        return None

    def stage_save(self):
        return None

    def stage_branch(self):
        return None

    def stage_resume(self):
        return None

    def stage_abort(self):
        return None


class CheckpointPipeline:
    """Runs spans of stages over an ordered registry of providers.

    Within a stage, providers execute in registration order; an abort
    walks them in reverse.  The same pipeline instance is reused across
    checkpoints (state resets whenever a span starts at ``PREPARE``).
    """

    def __init__(self, sim: Simulator, providers,
                 tracer: Optional[Tracer] = None,
                 session: str = "local") -> None:
        self.sim = sim
        self.providers: List[Checkpointable] = list(providers)
        self.tracer = tracer
        self.session = session
        self.timings: List[StageTiming] = []
        self._completed: List[Tuple[Stage, Checkpointable]] = []
        #: callbacks invoked as ``fn(stage, provider)`` when a provider's
        #: stage starts — fault injectors hook stage-relative triggers here
        self.stage_observers: List = []

    # ------------------------------------------------------------------ registry

    def add_provider(self, provider: Checkpointable) -> None:
        """Register another provider (appended: runs last, aborts first)."""
        self.providers.append(provider)

    def completed(self, stage: Stage) -> bool:
        """Has any provider completed ``stage`` in the current run?"""
        return any(s is stage for s, _ in self._completed)

    def reset(self) -> None:
        """Forget the current run's progress and timings."""
        self._completed.clear()
        self.timings.clear()

    # ------------------------------------------------------------------ execution

    def run_stages(self, first: Stage, last: Stage):
        """Generator: run stages ``first..last`` over all providers.

        Each (stage, provider) step is wrapped in a ``checkpoint.stage``
        sync span on the pipeline's session track.  The ``enabled_for``
        verdict is hoisted out of the loop so a disabled or filtered
        tracer costs the stage loop nothing per step.

            >>> from repro.sim.core import Simulator
            >>> pipe = CheckpointPipeline(Simulator(), [Checkpointable()])
            >>> pipe.run_stages_now(Stage.PREPARE, Stage.RESUME)
            >>> [t.stage for t in pipe.timings]
            ['prepare', 'precopy', 'quiesce', 'suspend', 'save', 'branch', 'resume']
        """
        lo, hi = _STAGE_INDEX[first], _STAGE_INDEX[last]
        if lo > hi:
            raise CheckpointError(
                f"{self.session}: stage span {first.value}..{last.value} "
                f"is reversed")
        if lo == 0:
            self.reset()
        tracer = self.tracer
        traced = (tracer is not None
                  and tracer.enabled_for("checkpoint.stage"))
        for stage in STAGES[lo:hi + 1]:
            for provider in self.providers:
                started = self.sim.now
                span = NULL_SPAN
                if traced:
                    span = tracer.span(
                        "checkpoint.stage", track=self.session,
                        name=stage.value, session=self.session,
                        stage=stage.value, provider=provider.name)
                for observer in self.stage_observers:
                    observer(stage, provider)
                try:
                    step = getattr(provider, f"stage_{stage.value}")()
                    if step is not None:
                        yield from step
                except StageFailed as exc:
                    span.end(error=str(exc))
                    raise
                except GeneratorExit:
                    # The driving process was killed mid-stage (crash /
                    # abort): close the span so the timeline stays
                    # well-formed, then unwind normally.
                    span.end(error="interrupted")
                    raise
                except (CheckpointError, FirewallViolation,
                        StorageError) as exc:
                    span.end(error=str(exc))
                    raise StageFailed(stage, provider.name, exc) from exc
                duration = self.sim.now - started
                self._completed.append((stage, provider))
                self.timings.append(StageTiming(stage.value, provider.name,
                                                started, duration))
                span.end(duration_ns=duration)

    def run_stages_now(self, first: Stage, last: Stage) -> None:
        """Run a span that must consume zero simulated time, synchronously."""
        gen = self.run_stages(first, last)
        try:
            next(gen)
        except StopIteration:
            return
        raise CheckpointError(
            f"{self.session}: stages {first.value}..{last.value} need "
            f"simulated time; drive them from a sim process")

    def run_local(self):
        """Generator: one full local checkpoint, all stages in order."""
        yield from self.run_stages(Stage.PREPARE, Stage.RESUME)

    def abort(self):
        """Generator: roll every provider back to running state.

        Providers are walked in reverse registration order (the inverse
        of stage execution) so dependent subsystems unwind before the
        things they depend on.  Safe to run from any partial progress.
        """
        for provider in reversed(self.providers):
            step = provider.stage_abort()
            if step is not None:
                yield from step
        self.reset()

    # ------------------------------------------------------------------ metrics

    def timings_by_stage(self) -> Dict[str, int]:
        """Total nanoseconds spent per stage in the last run."""
        out: Dict[str, int] = {}
        for t in self.timings:
            out[t.stage] = out.get(t.stage, 0) + t.duration_ns
        return out

    def snapshot_cost_bytes(self) -> int:
        """Total storage cost of a checkpoint across all providers."""
        return sum(p.snapshot_cost_bytes() for p in self.providers)


# ---------------------------------------------------------------------- policies

class SuspendPolicy:
    """Decides when an agent's suspend span fires after ``suspend_at T``."""

    def arm(self, sim: Simulator, clock, deadline_local_ns: int,
            fire: Callable[[], None]):
        """Schedule ``fire``; returns a cancellable handle or ``None``."""
        raise NotImplementedError


class DeadlineSuspend(SuspendPolicy):
    """The paper's design: one-shot timer against the disciplined clock.

    Realized suspend skew equals the residual clock-synchronization
    error at arming time — the transparency bound of §4.3.
    """

    def arm(self, sim, clock, deadline_local_ns, fire):
        return sim.call_in(clock.ns_until_local(deadline_local_ns), fire)


class ImmediateSuspend(SuspendPolicy):
    """Suspend on message receipt: skew = bus delivery jitter.

        >>> fired = []
        >>> ImmediateSuspend().arm(None, None, 0, lambda: fired.append("now"))
        >>> fired
        ['now']
    """

    def arm(self, sim, clock, deadline_local_ns, fire):
        fire()
        return None


class _RetryArm:
    """Cancellable handle over a chain of re-check timers."""

    def __init__(self) -> None:
        self.handle = None
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        if self.handle is not None:
            self.handle.cancel()
            self.handle = None


class BoundedSkewRetrySuspend(SuspendPolicy):
    """Sleep-most-of-the-way, then re-read the clock and re-arm.

    A one-shot timer armed far from the deadline realizes the *arming
    time's* clock error as suspend skew; while the timer sleeps, NTP
    keeps disciplining the clock.  This policy sleeps roughly half the
    remaining interval, re-reads the clock, and only arms the final
    one-shot once the remainder is below ``slice_ns`` — bounding the
    realized skew by the clock error at the last re-read.
    """

    def __init__(self, slice_ns: int = 50 * MS,
                 min_sleep_ns: int = 1 * MS) -> None:
        self.slice_ns = slice_ns
        self.min_sleep_ns = min_sleep_ns

    def arm(self, sim, clock, deadline_local_ns, fire):
        arm = _RetryArm()

        def check() -> None:
            if arm.cancelled:
                return
            remaining = clock.ns_until_local(deadline_local_ns)
            if remaining <= self.slice_ns:
                arm.handle = sim.call_in(remaining, fire)
                return
            arm.handle = sim.call_in(max(self.min_sleep_ns, remaining // 2),
                                     check)

        check()
        return arm


# ---------------------------------------------------------------------- providers

def check_payload(name: str, snapshot: dict, keys: Tuple[str, ...]) -> None:
    """Reject a payload whose key set is not exactly ``keys``.

    Restoring from a payload with missing or unknown keys means the
    snapshot was written by a different provider layout than the one
    restoring it; partial application would corrupt state silently, so
    every provider validates shape before touching anything.

        >>> check_payload("clock.n0", {"local_ns": 1},
        ...               ("local_ns", "steps"))
        Traceback (most recent call last):
            ...
        repro.errors.CheckpointError: clock.n0: payload keys ['local_ns'] != expected ['local_ns', 'steps']
    """
    if not isinstance(snapshot, dict) or set(snapshot) != set(keys):
        got = sorted(snapshot) if isinstance(snapshot, dict) \
            else type(snapshot).__name__
        raise CheckpointError(
            f"{name}: payload keys {got} != expected {sorted(keys)}")


class DomainProvider(Checkpointable):
    """A guest domain behind a temporal firewall (§4.1–4.2).

    Wraps a :class:`~repro.xen.checkpoint.LocalCheckpointer`, exposing
    its phase generators as pipeline stages.  The stage composition is
    byte-identical to the old monolithic ``run()`` sequence.
    """

    def __init__(self, checkpointer) -> None:
        self.checkpointer = checkpointer
        self.name = f"domain.{checkpointer.domain.name}"
        self.last_result = None
        self._started = 0
        self._precopy = (0, 0)
        self._saved = None

    def snapshot_cost_bytes(self) -> int:
        return self.checkpointer.domain.memory_bytes

    def stage_prepare(self):
        self._started = self.checkpointer.sim.now
        self._saved = None

    def stage_precopy(self):
        self._precopy = yield from self.checkpointer.precopy()

    def stage_quiesce(self):
        return self.checkpointer.quiesce()

    def stage_suspend(self):
        return self.checkpointer.suspend()

    def stage_save(self):
        self._saved = yield from self.checkpointer.save()

    def stage_resume(self):
        if self._saved is None:
            raise CheckpointError(f"{self.name}: resume before save")
        snapshot, dirty = self._saved
        memory_copied, precopy_ns = self._precopy
        result = yield from self.checkpointer.resume(
            self._started, precopy_ns, memory_copied, snapshot, dirty)
        self.checkpointer.results.append(result)
        self.last_result = result
        self._saved = None

    def stage_abort(self):
        domain = self.checkpointer.domain
        kernel = domain.kernel
        if kernel.firewall.up:
            yield from kernel.firewall.lower_sequence()
        for vbd in domain.vbds:
            if vbd.suspended:
                vbd.resume()
        for nic in domain.nics:
            if nic.suspended:
                nic.resume()
        self._saved = None

    def serialize(self) -> dict:
        if self._saved is not None:
            raise CheckpointError(
                f"{self.name}: serialize mid-pipeline (save completed but "
                f"resume has not run); snapshots are taken at quiescent "
                f"instants only")
        return {"started": self._started, "precopy": list(self._precopy)}

    def restore(self, snapshot: dict) -> None:
        check_payload(self.name, snapshot, ("started", "precopy"))
        self._started = snapshot["started"]
        self._precopy = tuple(snapshot["precopy"])
        self._saved = None


class DelayNodeProvider(Checkpointable):
    """A Dummynet delay node: freeze pipes, serialize, thaw (§4.4)."""

    #: cost of serializing pipe state non-destructively
    SERIALIZE_COST_NS = 300 * US

    def __init__(self, delay_node,
                 serialize_cost_ns: int = SERIALIZE_COST_NS) -> None:
        self.delay_node = delay_node
        self.serialize_cost_ns = serialize_cost_ns
        self.name = f"delay.{delay_node.name}"
        self.last_snapshot = None
        self.frozen_at = 0
        self.thawed_at = 0

    def stage_suspend(self):
        self.delay_node.freeze()
        self.frozen_at = self.delay_node.sim.now

    def stage_save(self):
        yield self.delay_node.sim.timeout(self.serialize_cost_ns)
        self.last_snapshot = self.delay_node.capture_state()

    def stage_resume(self):
        self.delay_node.thaw()
        self.thawed_at = self.delay_node.sim.now

    def stage_abort(self):
        if self.delay_node.frozen:
            self.delay_node.thaw()

    def serialize(self) -> dict:
        return {"node": self.delay_node.serialize_state(),
                "frozen_at": self.frozen_at, "thawed_at": self.thawed_at}

    def restore(self, snapshot: dict) -> None:
        check_payload(self.name, snapshot, ("node", "frozen_at",
                                            "thawed_at"))
        self.delay_node.restore_serialized(snapshot["node"])
        self.frozen_at = snapshot["frozen_at"]
        self.thawed_at = snapshot["thawed_at"]
        self.last_snapshot = None


class BranchProvider(Checkpointable):
    """Branching storage joins the checkpoint (§4.5, §5.1).

    During the ``branch`` stage — while the domain is frozen — the
    provider captures the branch's redo-log map as a
    :class:`~repro.storage.branching.BranchPoint`: pure metadata, zero
    simulated time, so disk state becomes part of the distributed
    checkpoint without perturbing the protocol.  A later restore can
    fork a new branch from the point via
    :meth:`~repro.storage.lvm.VolumeManager.fork_branch` or roll the
    live branch back with ``rollback_to``.
    """

    def __init__(self, branch) -> None:
        self.branch = branch
        self.name = f"storage.{branch.name}"
        self.last_branch_point = None

    def snapshot_cost_bytes(self) -> int:
        return self.branch.current_delta_blocks * 4096

    def stage_branch(self):
        self.last_branch_point = self.branch.take_checkpoint()

    def stage_abort(self):
        self.last_branch_point = None

    def serialize(self) -> dict:
        return {"branch": self.branch.serialize_state()}

    def restore(self, snapshot: dict) -> None:
        check_payload(self.name, snapshot, ("branch",))
        self.branch.restore_state(snapshot["branch"])
        self.last_branch_point = None


class FrontierProvider(Checkpointable):
    """The simulator's event frontier: virtual clock + sequence counter.

    In a snapshot, the frontier payload is tiny — ``(now, seq)`` — but
    it must be **restored first**: restoring it clears both event-store
    lanes and resets the tie-break counter, after which every other
    provider re-inserts its pending calls with their original
    ``(when, priority, seq)`` triples.  With the counter reset, events
    scheduled *after* the restore draw the same sequence numbers a
    replayed world would, which is what makes restore-then-run
    bit-identical to replay-then-run.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.name = "sim.frontier"

    def serialize(self) -> dict:
        return dict(self.sim.frontier_state())

    def restore(self, snapshot: dict) -> None:
        check_payload(self.name, snapshot, ("now", "seq"))
        self.sim.restore_frontier(snapshot["now"], snapshot["seq"])


class StreamsProvider(Checkpointable):
    """The experiment's named RNG substreams (`repro.sim.random`).

    Restoring positions every derived stream exactly where the snapshot
    took it; streams the snapshotted world had never touched are dropped
    so first use re-derives them from the seed — matching a replayed
    world's lazy derivation.
    """

    def __init__(self, streams) -> None:
        self.streams = streams
        self.name = "sim.streams"

    def serialize(self) -> dict:
        return {"streams": self.streams.serialize_state()}

    def restore(self, snapshot: dict) -> None:
        check_payload(self.name, snapshot, ("streams",))
        self.streams.restore_state(snapshot["streams"])


@dataclass(frozen=True)
class ClockHandoff:
    """Disciplined-clock state captured with a checkpoint.

    A restore on different hardware re-disciplines from scratch; handing
    the saved offset/frequency trim to the restored node's ntpd seeds
    convergence instead (the clocksync counterpart of §4.3's hand-off).

        >>> ClockHandoff("node0", 1_000, 42, -3.5).error_ns
        42
    """

    node: str
    local_ns: int
    error_ns: int
    frequency_correction_ppm: float


class ClockProvider(Checkpointable):
    """Captures the NTP-disciplined clock state during ``save``."""

    def __init__(self, clock, node_name: str) -> None:
        self.clock = clock
        self.node_name = node_name
        self.name = f"clock.{node_name}"
        self.last_handoff: Optional[ClockHandoff] = None

    def stage_save(self):
        self.last_handoff = ClockHandoff(
            node=self.node_name,
            local_ns=self.clock.read(),
            error_ns=self.clock.error_ns(),
            frequency_correction_ppm=self.clock.frequency_correction_ppm)

    def stage_abort(self):
        self.last_handoff = None

    def serialize(self) -> dict:
        return {"node": self.node_name,
                "clock": self.clock.serialize_state()}

    def restore(self, snapshot: dict) -> None:
        check_payload(self.name, snapshot, ("node", "clock"))
        if snapshot["node"] != self.node_name:
            raise CheckpointError(
                f"{self.name}: payload belongs to node "
                f"{snapshot['node']!r}")
        self.clock.restore_state(snapshot["clock"])
        self.last_handoff = None


class NaiveDomainProvider(Checkpointable):
    """The §3 baseline: suspends execution but **not** time.

    Same stage order and downtime as :class:`DomainProvider`, but no
    temporal firewall — the virtual clock and guest TSC keep running, so
    the guest observably jumps ``downtime`` into its own future.
    """

    def __init__(self, domain, config) -> None:
        self.domain = domain
        self.config = config
        self.sim = domain.sim
        self.name = f"naive.{domain.name}"
        self.last_downtime_ns = 0
        self.last_replayed = 0
        self._suspended_at = 0
        self._stopped = False

    def snapshot_cost_bytes(self) -> int:
        return self.domain.memory_bytes

    def stage_precopy(self):
        cfg, domain = self.config, self.domain
        if cfg.live:
            duration = transfer_time_ns(domain.memory_bytes,
                                        cfg.copy_rate_bps)
            share = cfg.dom0_weight / (1.0 + cfg.dom0_weight)
            domain.kernel.cpu_outside(int(duration * share),
                                      weight=cfg.dom0_weight)
            yield self.sim.timeout(duration)

    def stage_quiesce(self):
        for nic in self.domain.nics:
            nic.suspend()
        for vbd in self.domain.vbds:
            yield from vbd.suspend_after_drain()

    def stage_suspend(self):
        kernel = self.domain.kernel
        kernel.stop_user_execution()
        kernel.stop_kernel_execution()
        kernel.timers.freeze()
        self._suspended_at = self.sim.now
        self._stopped = True

    def stage_save(self):
        cfg, domain = self.config, self.domain
        dirty = (int(domain.memory_bytes * cfg.dirty_fraction)
                 if cfg.live else domain.memory_bytes)
        yield self.sim.timeout(transfer_time_ns(max(1, dirty),
                                                cfg.copy_rate_bps))
        yield self.sim.timeout(cfg.device_overhead_ns)

    def stage_resume(self):
        kernel = self.domain.kernel
        self.last_downtime_ns = self.sim.now - self._suspended_at
        # The virtual clock never froze: expired timers fire immediately,
        # and guest time has visibly jumped.
        kernel.timers.thaw()
        kernel.resume_kernel_execution()
        kernel.resume_user_execution()
        self._stopped = False
        for vbd in self.domain.vbds:
            vbd.resume()
        replayed = 0
        for nic in self.domain.nics:
            replayed += nic.resume()
        self.last_replayed = replayed

    def stage_abort(self):
        kernel = self.domain.kernel
        if self._stopped:
            kernel.timers.thaw()
            kernel.resume_kernel_execution()
            kernel.resume_user_execution()
            self._stopped = False
        for vbd in self.domain.vbds:
            if vbd.suspended:
                vbd.resume()
        for nic in self.domain.nics:
            if nic.suspended:
                nic.resume()

    def serialize(self) -> dict:
        if self._stopped:
            raise CheckpointError(
                f"{self.name}: serialize while suspended; snapshots are "
                f"taken at quiescent (running) instants")
        return {"last_downtime_ns": self.last_downtime_ns,
                "last_replayed": self.last_replayed}

    def restore(self, snapshot: dict) -> None:
        check_payload(self.name, snapshot, ("last_downtime_ns",
                                            "last_replayed"))
        self.last_downtime_ns = snapshot["last_downtime_ns"]
        self.last_replayed = snapshot["last_replayed"]
        self._suspended_at = 0
        self._stopped = False


# ---------------------------------------------------------------------- capture

@dataclass(frozen=True)
class SnapshotCapture:
    """What a pipeline capture of a run's state produced.

        >>> SnapshotCapture(snapshot_bytes=4096).providers
        ()
    """

    snapshot_bytes: int
    branch_points: Tuple = ()
    providers: Tuple[str, ...] = ()


def capture_run_snapshot(run) -> SnapshotCapture:
    """Capture a run's checkpoint cost through the pipeline.

    Runs exposing ``checkpointables()`` (a provider list) get a real
    pipeline capture: the ``branch`` stage runs synchronously (it is
    metadata-only), every :class:`BranchProvider` takes a branch point,
    and the snapshot cost is the sum of provider costs.  Runs without
    providers fall back to their own ``snapshot_bytes()``.

        >>> class BareRun:
        ...     def snapshot_bytes(self):
        ...         return 64
        >>> capture_run_snapshot(BareRun()).snapshot_bytes
        64
    """
    getter = getattr(run, "checkpointables", None)
    providers = list(getter()) if getter is not None else []
    if not providers:
        return SnapshotCapture(snapshot_bytes=run.snapshot_bytes())
    pipeline = CheckpointPipeline(run.sim, providers, session="timetravel")
    pipeline.run_stages_now(Stage.BRANCH, Stage.BRANCH)
    points = tuple(p.last_branch_point for p in providers
                   if isinstance(p, BranchProvider)
                   and p.last_branch_point is not None)
    return SnapshotCapture(
        snapshot_bytes=pipeline.snapshot_cost_bytes(),
        branch_points=points,
        providers=tuple(p.name for p in providers))

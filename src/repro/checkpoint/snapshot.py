"""Content-addressed snapshots of provider state (the DMTCP plugin model).

The staged pipeline (:mod:`repro.checkpoint.pipeline`) coordinates *when*
subsystems freeze; this module is the *what*: every
:class:`~repro.checkpoint.pipeline.Checkpointable` provider serializes its
own state through the versioned ``serialize() -> dict`` hook, and the
snapshot store persists those payloads the way the paper's branching
storage persists disk deltas (§4.5, §5.1):

* **chunked, content-addressed blobs** — each provider payload is encoded
  canonically (sorted-key JSON), split into fixed-size chunks, and stored
  by SHA-256.  Chunks shared with any earlier snapshot are stored once, so
  the *incremental* cost of snapshot N+1 is only what actually changed —
  the redo-log property, applied to component state.
* **strict manifests** — one :class:`SnapshotManifest` per snapshot records
  every provider's name, schema version, payload digest, and chunk list,
  plus the parent snapshot reference.  ``from_dict`` rejects unknown or
  missing fields loudly: a manifest that cannot be fully understood is
  never partially restored.
* **two-phase restore** — :meth:`SnapshotStore.restore` first validates
  *everything* (manifest/provider name sets, schema versions, chunk
  digests, payload digests) and only then applies ``restore(payload)`` to
  the providers, so a corrupted snapshot raises
  :class:`~repro.errors.SnapshotError` before any live state is touched.

Restore cost is O(state), not O(history) — the property that turns the
time-travel controller's replay-from-origin into restore-then-run (§6).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SnapshotError

#: payload chunk size; small enough that a machine counter change does not
#: force re-storing an unrelated provider's whole payload
CHUNK_BYTES = 1024

#: manifest container format version (bumped on incompatible layout change)
MANIFEST_FORMAT = 1


def canonical_bytes(payload: dict) -> bytes:
    """Canonical encoding of one provider payload (sorted-key JSON).

        >>> canonical_bytes({"b": 1, "a": [2, 3]})
        b'{"a":[2,3],"b":1}'
    """
    try:
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"payload is not JSON-serializable: {exc}") \
            from exc


def payload_digest(blob: bytes) -> str:
    """SHA-256 hex digest of an encoded payload."""
    return hashlib.sha256(blob).hexdigest()


class ChunkStore:
    """Content-addressed chunk storage with cross-snapshot dedup."""

    def __init__(self) -> None:
        self._chunks: Dict[str, bytes] = {}
        self.chunks_stored = 0
        self.chunks_deduped = 0
        self.bytes_stored = 0
        self.bytes_deduped = 0

    def __len__(self) -> int:
        return len(self._chunks)

    def put(self, blob: bytes) -> Tuple[str, ...]:
        """Store ``blob`` chunked; returns the chunk reference list."""
        refs: List[str] = []
        for off in range(0, len(blob), CHUNK_BYTES) or (0,):
            chunk = blob[off:off + CHUNK_BYTES]
            ref = hashlib.sha256(chunk).hexdigest()
            if ref in self._chunks:
                self.chunks_deduped += 1
                self.bytes_deduped += len(chunk)
            else:
                self._chunks[ref] = chunk
                self.chunks_stored += 1
                self.bytes_stored += len(chunk)
            refs.append(ref)
        return tuple(refs)

    def get(self, refs: Sequence[str]) -> bytes:
        """Reassemble a payload, verifying every chunk against its ref."""
        parts: List[bytes] = []
        for ref in refs:
            chunk = self._chunks.get(ref)
            if chunk is None:
                raise SnapshotError(f"missing chunk {ref[:12]}…")
            if hashlib.sha256(chunk).hexdigest() != ref:
                raise SnapshotError(f"corrupted chunk {ref[:12]}…")
            parts.append(chunk)
        return b"".join(parts)

    def has(self, ref: str) -> bool:
        return ref in self._chunks

    def corrupt(self, ref: str) -> None:
        """Flip one byte of a stored chunk (test hook for rejection paths)."""
        chunk = self._chunks.get(ref)
        if chunk is None:
            raise SnapshotError(f"missing chunk {ref[:12]}…")
        flipped = bytes([chunk[0] ^ 0xFF]) + chunk[1:]
        self._chunks[ref] = flipped


def _require(mapping: dict, keys: Iterable[str], what: str) -> None:
    missing = [k for k in keys if k not in mapping]
    extra = [k for k in mapping if k not in keys]
    if missing or extra:
        raise SnapshotError(
            f"malformed {what}: missing={missing or None} "
            f"unknown={extra or None}")


@dataclass(frozen=True)
class ProviderRecord:
    """One provider's entry in a snapshot manifest."""

    name: str
    schema_version: int
    nbytes: int
    digest: str
    chunks: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {"name": self.name, "schema_version": self.schema_version,
                "nbytes": self.nbytes, "digest": self.digest,
                "chunks": list(self.chunks)}

    @classmethod
    def from_dict(cls, data: dict) -> "ProviderRecord":
        if not isinstance(data, dict):
            raise SnapshotError("malformed provider record: not a mapping")
        _require(data, ("name", "schema_version", "nbytes", "digest",
                        "chunks"), "provider record")
        if not isinstance(data["schema_version"], int):
            raise SnapshotError(
                f"provider {data['name']!r}: schema_version must be int")
        return cls(name=data["name"],
                   schema_version=data["schema_version"],
                   nbytes=data["nbytes"], digest=data["digest"],
                   chunks=tuple(data["chunks"]))


@dataclass(frozen=True)
class SnapshotManifest:
    """All metadata of one snapshot: providers, digests, parent ref."""

    snapshot_id: str
    virtual_time_ns: int
    parent: Optional[str]
    label: str
    providers: Tuple[ProviderRecord, ...]
    #: chunk bytes newly stored by this snapshot (0 == fully deduplicated)
    new_chunk_bytes: int

    @property
    def total_bytes(self) -> int:
        return sum(p.nbytes for p in self.providers)

    def record(self, name: str) -> ProviderRecord:
        for rec in self.providers:
            if rec.name == name:
                return rec
        raise SnapshotError(
            f"snapshot {self.snapshot_id!r} has no provider {name!r}")

    def to_dict(self) -> dict:
        return {"format": MANIFEST_FORMAT,
                "snapshot_id": self.snapshot_id,
                "virtual_time_ns": self.virtual_time_ns,
                "parent": self.parent, "label": self.label,
                "new_chunk_bytes": self.new_chunk_bytes,
                "providers": [p.to_dict() for p in self.providers]}

    @classmethod
    def from_dict(cls, data: dict) -> "SnapshotManifest":
        if not isinstance(data, dict):
            raise SnapshotError("malformed manifest: not a mapping")
        _require(data, ("format", "snapshot_id", "virtual_time_ns", "parent",
                        "label", "new_chunk_bytes", "providers"), "manifest")
        if data["format"] != MANIFEST_FORMAT:
            raise SnapshotError(
                f"manifest format {data['format']!r} unsupported "
                f"(this build reads format {MANIFEST_FORMAT})")
        return cls(snapshot_id=data["snapshot_id"],
                   virtual_time_ns=data["virtual_time_ns"],
                   parent=data["parent"], label=data["label"],
                   new_chunk_bytes=data["new_chunk_bytes"],
                   providers=tuple(ProviderRecord.from_dict(p)
                                   for p in data["providers"]))


class SnapshotStore:
    """Takes, stores, diffs, and restores provider-state snapshots."""

    def __init__(self) -> None:
        self.chunks = ChunkStore()
        self.manifests: Dict[str, SnapshotManifest] = {}
        self.order: List[str] = []

    # ------------------------------------------------------------------ take

    def take(self, snapshot_id: str, providers, virtual_time_ns: int,
             parent: Optional[str] = None,
             label: str = "") -> SnapshotManifest:
        """Serialize every provider into a new snapshot.

        ``parent`` names the snapshot this one is incremental against —
        purely informational for navigation; dedup is global, so chunks
        shared with *any* stored snapshot are never stored twice.
        """
        if snapshot_id in self.manifests:
            raise SnapshotError(f"snapshot {snapshot_id!r} already exists")
        if parent is not None and parent not in self.manifests:
            raise SnapshotError(f"parent snapshot {parent!r} not found")
        before = self.chunks.bytes_stored
        records: List[ProviderRecord] = []
        seen: set = set()
        for provider in providers:
            if provider.name in seen:
                raise SnapshotError(
                    f"duplicate provider name {provider.name!r}")
            seen.add(provider.name)
            payload = provider.serialize()
            if not isinstance(payload, dict):
                raise SnapshotError(
                    f"{provider.name}: serialize() must return a dict, "
                    f"got {type(payload).__name__}")
            blob = canonical_bytes(payload)
            records.append(ProviderRecord(
                name=provider.name,
                schema_version=provider.SCHEMA_VERSION,
                nbytes=len(blob),
                digest=payload_digest(blob),
                chunks=self.chunks.put(blob)))
        manifest = SnapshotManifest(
            snapshot_id=snapshot_id, virtual_time_ns=virtual_time_ns,
            parent=parent, label=label, providers=tuple(records),
            new_chunk_bytes=self.chunks.bytes_stored - before)
        self.manifests[snapshot_id] = manifest
        self.order.append(snapshot_id)
        return manifest

    # ------------------------------------------------------------------ read

    def manifest(self, snapshot_id: str) -> SnapshotManifest:
        manifest = self.manifests.get(snapshot_id)
        if manifest is None:
            raise SnapshotError(f"unknown snapshot {snapshot_id!r}")
        return manifest

    def materialize(self, snapshot_id: str) -> Dict[str, dict]:
        """Decode every provider payload of a snapshot (validated)."""
        manifest = self.manifest(snapshot_id)
        out: Dict[str, dict] = {}
        for rec in manifest.providers:
            out[rec.name] = self._decode(manifest.snapshot_id, rec)
        return out

    def _decode(self, snapshot_id: str, rec: ProviderRecord) -> dict:
        blob = self.chunks.get(rec.chunks)
        if len(blob) != rec.nbytes:
            raise SnapshotError(
                f"{snapshot_id}/{rec.name}: truncated payload "
                f"({len(blob)} bytes, manifest says {rec.nbytes})")
        if payload_digest(blob) != rec.digest:
            raise SnapshotError(
                f"{snapshot_id}/{rec.name}: payload digest mismatch")
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SnapshotError(
                f"{snapshot_id}/{rec.name}: undecodable payload: "
                f"{exc}") from exc

    # ------------------------------------------------------------------ restore

    def restore(self, snapshot_id: str, providers) -> SnapshotManifest:
        """Two-phase restore: validate everything, then apply in order.

        Phase 1 cross-checks the provider registry against the manifest
        (same name set, same schema versions) and decodes every payload
        with digest verification.  Only if *all* of that succeeds does
        phase 2 call ``restore(payload)`` on each provider, in the given
        registration order (the frontier provider must come first — see
        docs/snapshots.md).  Any phase-1 failure leaves live state
        untouched.
        """
        manifest = self.manifest(snapshot_id)
        providers = list(providers)
        live = {p.name: p for p in providers}
        if len(live) != len(providers):
            raise SnapshotError("duplicate provider names in registry")
        recorded = {rec.name for rec in manifest.providers}
        if set(live) != recorded:
            raise SnapshotError(
                f"provider registry mismatch: snapshot has "
                f"{sorted(recorded)}, live run has {sorted(live)}")
        payloads: Dict[str, dict] = {}
        for rec in manifest.providers:
            provider = live[rec.name]
            if provider.SCHEMA_VERSION != rec.schema_version:
                raise SnapshotError(
                    f"{rec.name}: schema version mismatch (snapshot v"
                    f"{rec.schema_version}, provider v"
                    f"{provider.SCHEMA_VERSION}); refusing to restore")
            payloads[rec.name] = self._decode(snapshot_id, rec)
        for provider in providers:        # phase 2: all-or-nothing apply
            provider.restore(payloads[provider.name])
        return manifest

    # ------------------------------------------------------------------ stats

    def delta_stats(self, snapshot_id: str) -> dict:
        """Full-vs-incremental cost of one stored snapshot."""
        manifest = self.manifest(snapshot_id)
        return {"snapshot_id": snapshot_id,
                "parent": manifest.parent,
                "total_bytes": manifest.total_bytes,
                "new_chunk_bytes": manifest.new_chunk_bytes,
                "dedup_saved_bytes":
                    manifest.total_bytes - manifest.new_chunk_bytes,
                "providers": len(manifest.providers)}

    def diff(self, first_id: str, second_id: str) -> dict:
        """Per-provider comparison of two snapshots."""
        first, second = self.manifest(first_id), self.manifest(second_id)
        a = {rec.name: rec for rec in first.providers}
        b = {rec.name: rec for rec in second.providers}
        changed = []
        for name in sorted(set(a) & set(b)):
            ra, rb = a[name], b[name]
            if ra.digest == rb.digest:
                continue
            shared = len(set(ra.chunks) & set(rb.chunks))
            changed.append({"name": name,
                            "bytes_before": ra.nbytes,
                            "bytes_after": rb.nbytes,
                            "chunks_shared": shared,
                            "chunks_after": len(rb.chunks)})
        return {"first": first_id, "second": second_id,
                "added": sorted(set(b) - set(a)),
                "removed": sorted(set(a) - set(b)),
                "unchanged": sorted(n for n in set(a) & set(b)
                                    if a[n].digest == b[n].digest),
                "changed": changed}

    # ------------------------------------------------------------------ persistence

    def to_json(self) -> dict:
        """The whole store as one JSON document (chunks base64-encoded)."""
        refs = sorted({ref for m in self.manifests.values()
                       for rec in m.providers for ref in rec.chunks})
        return {"format": MANIFEST_FORMAT,
                "snapshots": [self.manifests[sid].to_dict()
                              for sid in self.order],
                "chunks": {ref: base64.b64encode(
                               self.chunks.get((ref,))).decode("ascii")
                           for ref in refs}}

    @classmethod
    def from_json(cls, data: dict) -> "SnapshotStore":
        if not isinstance(data, dict):
            raise SnapshotError("malformed store document: not a mapping")
        _require(data, ("format", "snapshots", "chunks"), "store document")
        if data["format"] != MANIFEST_FORMAT:
            raise SnapshotError(
                f"store format {data['format']!r} unsupported")
        store = cls()
        for ref, blob64 in data["chunks"].items():
            try:
                chunk = base64.b64decode(blob64)
            except (ValueError, TypeError) as exc:
                raise SnapshotError(
                    f"chunk {ref[:12]}…: invalid base64") from exc
            if hashlib.sha256(chunk).hexdigest() != ref:
                raise SnapshotError(f"corrupted chunk {ref[:12]}… on load")
            store.chunks._chunks[ref] = chunk
            store.chunks.chunks_stored += 1
            store.chunks.bytes_stored += len(chunk)
        for entry in data["snapshots"]:
            manifest = SnapshotManifest.from_dict(entry)
            for rec in manifest.providers:
                for ref in rec.chunks:
                    if not store.chunks.has(ref):
                        raise SnapshotError(
                            f"{manifest.snapshot_id}/{rec.name}: chunk "
                            f"{ref[:12]}… missing from store document")
            store.manifests[manifest.snapshot_id] = manifest
            store.order.append(manifest.snapshot_id)
        return store

    def save(self, path: str) -> None:
        """Write the store to ``path`` atomically (temp + fsync + rename).

        A crash mid-save leaves either the previous file intact or a
        ``.tmp`` sibling beside it — never a torn store file that a
        later :meth:`load` would half-parse.
        """
        blob = json.dumps(self.to_json(), indent=1,
                          sort_keys=True).encode("utf-8")
        tmp = path + ".tmp"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o666)
        try:
            os.write(fd, blob)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "SnapshotStore":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as exc:
            raise SnapshotError(
                f"cannot read store file {path}: {exc}") from exc
        except ValueError as exc:
            raise SnapshotError(
                f"unreadable store file {path}: truncated or not a "
                f"snapshot store ({exc})") from exc
        return cls.from_json(data)

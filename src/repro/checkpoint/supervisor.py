"""Supervised checkpoints: retry an aborted round until it completes.

The coordinator's two-phase abort turns a wedged barrier into a clean
:class:`~repro.checkpoint.pipeline.CheckpointFailure`; the supervisor
turns that failure into another attempt.  Between attempts it backs off
(exponentially, with jitter drawn from its own
``derived_rng("ckpt.supervisor")`` substream so nothing else shifts) and
consults a pluggable :class:`DegradationPolicy`:

* :class:`FailFast` — never retry; surface the first failure.
* :class:`RetryThenAbort` — retry up to N times, then give up.
* :class:`ProceedWithoutDelayNodes` — like retry, but when every
  culprit is a delay-node agent, exclude them from the quorum and
  complete the checkpoint in degraded form (the network core's
  in-flight packets for those pipes are lost; endpoints still recover
  them through retransmission, which the paper's firewall model makes
  safe).

Every decision emits a structured ``retry.*`` trace record so the
recovery history of a run is observable through ``analysis.metrics``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.checkpoint.coordinator import Coordinator
from repro.checkpoint.pipeline import CheckpointFailure
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import Simulator
from repro.sim.random import derived_rng
from repro.obs.trace import Tracer, maybe_record
from repro.units import MS, SECOND


@dataclass(frozen=True)
class RetryDecision:
    """What a :class:`DegradationPolicy` wants done about one failure."""

    retry: bool
    backoff_ns: int = 0
    #: agents to drop from the quorum before the next attempt
    exclude: Tuple[str, ...] = ()
    reason: str = ""


class DegradationPolicy:
    """Decides whether (and how) to retry an aborted checkpoint."""

    name = "policy"

    def decide(self, failure: CheckpointFailure, attempt: int,
               coordinator: Coordinator) -> RetryDecision:
        """``attempt`` is the zero-based index of the failed attempt."""
        raise NotImplementedError


class FailFast(DegradationPolicy):
    """Surface the first failure; never retry."""

    name = "fail-fast"

    def decide(self, failure, attempt, coordinator) -> RetryDecision:
        return RetryDecision(retry=False, reason="fail-fast")


class RetryThenAbort(DegradationPolicy):
    """Retry with exponential backoff, up to ``max_retries`` times."""

    name = "retry-then-abort"

    def __init__(self, max_retries: int = 3,
                 base_backoff_ns: int = 500 * MS,
                 backoff_factor: float = 2.0,
                 max_backoff_ns: int = 8 * SECOND) -> None:
        self.max_retries = max_retries
        self.base_backoff_ns = base_backoff_ns
        self.backoff_factor = backoff_factor
        self.max_backoff_ns = max_backoff_ns

    def _backoff(self, attempt: int) -> int:
        backoff = int(self.base_backoff_ns *
                      (self.backoff_factor ** attempt))
        return min(backoff, self.max_backoff_ns)

    def decide(self, failure, attempt, coordinator) -> RetryDecision:
        if attempt >= self.max_retries:
            return RetryDecision(retry=False,
                                 reason=f"gave up after {attempt + 1} "
                                        f"attempts")
        return RetryDecision(retry=True, backoff_ns=self._backoff(attempt),
                             reason="retry")


class ProceedWithoutDelayNodes(RetryThenAbort):
    """Degrade rather than die when only delay-node agents are lost.

    If every agent implicated in the failure (missed the barrier or
    reported a stage failure) is a delay-node agent, they are excluded
    from the quorum and the checkpoint proceeds without the network
    core's state for those pipes.  Any implicated *node* agent falls
    back to plain retry semantics — guest state is never sacrificed.
    """

    name = "proceed-without-delay-nodes"

    def decide(self, failure, attempt, coordinator) -> RetryDecision:
        base = super().decide(failure, attempt, coordinator)
        if not base.retry:
            return base
        delay_names = {a.name for a in coordinator.delay_agents}
        culprits = set(failure.missing) | {f.node
                                           for f in failure.agent_failures}
        culprits -= coordinator.excluded
        if culprits and culprits <= delay_names:
            return RetryDecision(retry=True, backoff_ns=base.backoff_ns,
                                 exclude=tuple(sorted(culprits)),
                                 reason="degraded: excluding dead delay "
                                        "nodes")
        return base


class CheckpointSupervisor:
    """Drives a coordinator through supervised, retried checkpoints."""

    def __init__(self, sim: Simulator, coordinator: Coordinator,
                 policy: Optional[DegradationPolicy] = None,
                 tracer: Optional[Tracer] = None,
                 rng: Optional[random.Random] = None,
                 jitter_ns: int = 50 * MS,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.coordinator = coordinator
        self.policy = policy or RetryThenAbort()
        self.tracer = tracer
        self.jitter_ns = jitter_ns
        self._rng = rng
        # Default to the bus's registry so one snapshot covers the whole
        # control plane (bus deliveries + supervised retries).
        if metrics is None:
            metrics = getattr(coordinator.bus, "metrics", None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        session = coordinator.session
        self._c_attempts = self.metrics.counter("supervisor.attempts",
                                                session=session)
        self._c_recovered = self.metrics.counter("supervisor.recovered",
                                                 session=session)
        self._c_gave_up = self.metrics.counter("supervisor.gave_up",
                                               session=session)
        self._c_degraded = self.metrics.counter("supervisor.degraded",
                                                session=session)
        #: attempts consumed by the most recent supervised checkpoint
        self.attempts = 0
        #: failures of the most recent supervised checkpoint, in order
        self.failures: List[CheckpointFailure] = []

    def _jitter_rng(self) -> random.Random:
        if self._rng is None:
            self._rng = derived_rng("ckpt.supervisor")
        return self._rng

    # -- public API ------------------------------------------------------------

    def checkpoint_scheduled(self):
        """Supervised clock-scheduled checkpoint; returns a sim process."""
        return self.sim.process(self._run(scheduled=True))

    def checkpoint_now(self):
        """Supervised event-driven checkpoint; returns a sim process."""
        return self.sim.process(self._run(scheduled=False))

    # -- loop ------------------------------------------------------------------

    def _run(self, scheduled: bool):
        session = self.coordinator.session
        self.failures = []
        attempt = 0
        while True:
            self._c_attempts.inc()
            maybe_record(self.tracer, "retry.checkpoint.attempt",
                         session=session, attempt=attempt,
                         scheduled=scheduled, policy=self.policy.name)
            if scheduled:
                proc = self.coordinator.checkpoint_scheduled()
            else:
                proc = self.coordinator.checkpoint_now()
            result = yield proc
            if result.ok:
                self.attempts = attempt + 1
                if attempt:
                    self._c_recovered.inc()
                    maybe_record(self.tracer, "retry.checkpoint.recovered",
                                 session=session, attempts=attempt + 1,
                                 excluded=tuple(
                                     sorted(self.coordinator.excluded)))
                return result
            self.failures.append(result)
            decision = self.policy.decide(result, attempt, self.coordinator)
            if not decision.retry:
                self.attempts = attempt + 1
                self._c_gave_up.inc()
                maybe_record(self.tracer, "retry.checkpoint.gave_up",
                             session=session, attempts=attempt + 1,
                             stage=result.stage, reason=decision.reason)
                return result
            if decision.exclude:
                self.coordinator.exclude(decision.exclude)
                self._c_degraded.inc()
                maybe_record(self.tracer, "retry.checkpoint.degraded",
                             session=session, excluded=decision.exclude,
                             reason=decision.reason)
            backoff = decision.backoff_ns
            if self.jitter_ns:
                backoff += int(self._jitter_rng().random() * self.jitter_ns)
            maybe_record(self.tracer, "retry.checkpoint.backoff",
                         session=session, attempt=attempt,
                         backoff_ns=backoff)
            if backoff > 0:
                yield self.sim.timeout(backoff)
            attempt += 1

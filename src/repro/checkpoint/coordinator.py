"""Coordinated distributed checkpoint (§4.3–4.4).

The protocol reconciles two requirements: atomicity across the network
(every node suspends at "the same" instant) and capturing the network core
(delay nodes serialize their Dummynet state).  It runs in four rounds over
the notification bus:

1. ``prepare`` — every node agent runs the pipeline's ``prepare`` and
   ``precopy`` stages (live memory copy; delay-node agents have nothing
   to pre-copy).  Each replies ``ready``.
2. ``suspend_at T`` — the coordinator picks a wall-clock deadline ``T``
   (its own NTP-disciplined clock plus a margin) and publishes it.  Each
   agent's :class:`~repro.checkpoint.pipeline.SuspendPolicy` arms a local
   timer against its *own* disciplined clock, so the realized suspend
   skew equals the residual clock-synchronization error — the paper's
   transparency bound.  (``checkpoint_now`` instead suspends on message
   receipt: skew = control-network delivery jitter.)
3. Agents run ``quiesce → suspend → save → branch`` and report
   ``saved``; the coordinator's barrier waits for all of them.
4. ``resume`` — all agents thaw on receipt, so resume skew is again one
   bus-delivery jitter.

Every agent drives the same staged engine
(:class:`~repro.checkpoint.pipeline.CheckpointPipeline`); the coordinator
owns only barriers and failure semantics.  A barrier that times out, or
an agent that publishes a structured ``failed`` report, triggers the
**two-phase abort**: the coordinator publishes ``abort``, every agent
rolls its providers back to running state (pipeline ``abort``) and acks
``aborted``, and the checkpoint returns a
:class:`~repro.checkpoint.pipeline.CheckpointFailure` instead of wedging
the barrier forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.bus import Barrier, BusMessage, NotificationBus
from repro.checkpoint.pipeline import (AgentFailure, BranchProvider,
                                       CheckpointFailure, CheckpointPipeline,
                                       ClockProvider, DeadlineSuspend,
                                       DelayNodeProvider, DomainProvider,
                                       Stage, StageFailed, SuspendPolicy)
from repro.clocksync.clock import SystemClock
from repro.errors import CheckpointError, FirewallViolation, StorageError
from repro.net.delaynode import DelayNode, DelayNodeSnapshot
from repro.sim.core import Simulator
from repro.obs.trace import NULL_SPAN, Tracer, maybe_record
from repro.units import MS, SECOND
from repro.xen.checkpoint import CheckpointResult, LocalCheckpointer


class _PipelineAgent:
    """Bus plumbing shared by node and delay-node agents.

    Subclasses own a :class:`CheckpointPipeline`; this base wires the
    session topics, arms the suspend policy, and routes stage failures
    into structured ``failed`` reports instead of letting a
    :class:`CheckpointError` escape a bus callback into the simulator
    loop.
    """

    def __init__(self, sim: Simulator, name: str, clock: SystemClock,
                 bus: NotificationBus, session: str,
                 policy: Optional[SuspendPolicy]) -> None:
        self.sim = sim
        self.name = name
        self.clock = clock
        self.bus = bus
        self.session = session
        self.policy = policy or DeadlineSuspend()
        self.last_failure: Optional[AgentFailure] = None
        self._suspend_arm = None
        self._aborting = False
        self._detached = False
        #: coordinator round this agent is participating in (set by the
        #: ``prepare`` message; stale-round messages are dropped)
        self._epoch = -1
        #: messages dropped because they belonged to an earlier round
        self.stale_messages = 0
        self._topics = (
            ("prepare", self._on_prepare),
            ("suspend_at", self._on_suspend_at),
            ("now", self._on_now),
            ("resume", self._on_resume),
            ("abort", self._on_abort),
        )
        self._subscribe_all()

    # Subclasses provide the pipeline.
    pipeline: CheckpointPipeline

    def _subscribe_all(self) -> None:
        for topic, handler in self._topics:
            self.bus.subscribe(f"{self.session}/{topic}", self.name, handler)

    def kill(self) -> None:
        """Stop responding to the bus (simulates an agent/node death)."""
        self._detached = True
        self._aborting = True
        if self._suspend_arm is not None:
            self._suspend_arm.cancel()
            self._suspend_arm = None
        for topic, _handler in self._topics:
            self.bus.unsubscribe(f"{self.session}/{topic}", self.name)

    def crash(self) -> None:
        """Fail-stop crash mid-protocol (alias that reads like a fault)."""
        self.kill()

    def revive(self):
        """Reboot a crashed agent: roll its providers back to running
        state (the reboot *is* the rollback) and rejoin the bus.

        Whatever rounds the agent missed while dead stay missed — the
        :class:`~repro.checkpoint.supervisor.CheckpointSupervisor` is
        what turns a reboot into a completed checkpoint, by retrying the
        whole round with the agent back in the quorum.
        """
        if not self._detached:
            return None
        self._epoch = -1
        return self.sim.process(self._reboot_rollback())

    def _reboot_rollback(self):
        try:
            yield from self.pipeline.abort()
        except (CheckpointError, FirewallViolation, StorageError):
            pass        # a rebooting node has nobody to report to
        self._detached = False
        self._aborting = False
        self._subscribe_all()

    # -- bus output ------------------------------------------------------------

    def _publish(self, topic: str, payload=None) -> None:
        """Publish unless crashed — a dead agent cannot reach the bus,
        even from a still-unwinding pipeline process."""
        if self._detached:
            return
        self.bus.publish(f"{self.session}/{topic}", payload,
                         publisher=self.name)

    def _reply(self) -> tuple:
        """Round-tagged ack payload for coordinator barriers."""
        return (self.name, self._epoch)

    def _stale(self, msg: BusMessage) -> bool:
        """Drop round-tagged messages from an earlier (aborted) round —
        e.g. a retransmitted ``resume`` arriving after a supervised
        retry already started the next round."""
        epoch = msg.payload
        if isinstance(epoch, int) and epoch != self._epoch:
            self.stale_messages += 1
            return True
        return False

    # -- failure routing ------------------------------------------------------

    def _report_failure(self, stage: str, exc: BaseException) -> None:
        if isinstance(exc, StageFailed):
            stage = exc.stage.value
        failure = AgentFailure(node=self.name, stage=stage, error=str(exc),
                               epoch=self._epoch)
        self.last_failure = failure
        self._publish("failed", failure)

    # -- round 1: prepare ------------------------------------------------------

    def _on_prepare(self, msg: BusMessage) -> None:
        if self._detached:
            return
        self._epoch = msg.payload if isinstance(msg.payload, int) else -1
        self._aborting = False
        self._prepare_impl()

    # -- round 2 arming -------------------------------------------------------

    def _on_suspend_at(self, msg: BusMessage) -> None:
        if self._detached:
            return
        deadline = msg.payload
        if isinstance(deadline, tuple):
            epoch, deadline = deadline
            if isinstance(epoch, int) and epoch != self._epoch:
                self.stale_messages += 1
                return

        def fire() -> None:
            self._suspend_arm = None
            self.sim.process(self._suspend())

        self._suspend_arm = self.policy.arm(self.sim, self.clock,
                                            deadline, fire)

    def _on_now(self, msg: BusMessage) -> None:
        if self._detached or self._stale(msg):
            return
        self.sim.process(self._suspend())

    # -- abort round ----------------------------------------------------------

    def _on_abort(self, msg: BusMessage) -> None:
        if self._detached or self._stale(msg):
            return
        self._aborting = True
        if self._suspend_arm is not None:
            self._suspend_arm.cancel()
            self._suspend_arm = None
        self.sim.process(self._abort())

    def _abort(self):
        try:
            yield from self.pipeline.abort()
        except (CheckpointError, FirewallViolation, StorageError) as exc:
            self._report_failure("abort", exc)
            return
        self._publish("aborted", self._reply())

    # Subclass hooks ----------------------------------------------------------

    def _prepare_impl(self) -> None:
        raise NotImplementedError

    def _suspend(self):
        raise NotImplementedError

    def _on_resume(self, _msg: BusMessage) -> None:
        raise NotImplementedError


class NodeAgent(_PipelineAgent):
    """Checkpoint agent running in dom0 of one experiment node.

    Drives the staged pipeline over a :class:`DomainProvider` plus any
    ``extra_providers`` (branching storage, clock hand-off) between the
    coordinator's bus rounds.
    """

    def __init__(self, sim: Simulator, name: str,
                 checkpointer: LocalCheckpointer, clock: SystemClock,
                 bus: NotificationBus, session: str = "ckpt",
                 policy: Optional[SuspendPolicy] = None,
                 tracer: Optional[Tracer] = None,
                 extra_providers=()) -> None:
        super().__init__(sim, name, clock, bus, session, policy)
        self.checkpointer = checkpointer
        self.provider = DomainProvider(checkpointer)
        self.pipeline = CheckpointPipeline(
            sim, [self.provider, *extra_providers], tracer=tracer,
            session=f"{session}/{name}")
        self.last_result: Optional[CheckpointResult] = None

    # -- round 1: prepare -----------------------------------------------------

    def _prepare_impl(self) -> None:
        self.sim.process(self._prepare())

    def _prepare(self):
        try:
            yield from self.pipeline.run_stages(Stage.PREPARE, Stage.PRECOPY)
        except CheckpointError as exc:
            self._report_failure(Stage.PRECOPY.value, exc)
            return
        if self._aborting:
            return
        self._publish("ready", self._reply())

    # -- round 3: suspend/save/branch -----------------------------------------

    def _suspend(self):
        if self._aborting:
            return
        try:
            yield from self.pipeline.run_stages(Stage.QUIESCE, Stage.BRANCH)
        except CheckpointError as exc:
            self._report_failure(Stage.SAVE.value, exc)
            return
        if self._aborting:
            return
        self._publish("saved", self._reply())

    # -- round 4: resume ------------------------------------------------------

    def _on_resume(self, msg: BusMessage) -> None:
        if self._detached or self._stale(msg):
            return
        self.sim.process(self._resume())

    def _resume(self):
        if not self.pipeline.completed(Stage.SAVE):
            self._report_failure(
                Stage.RESUME.value,
                CheckpointError(f"{self.name}: resume before save"))
            return
        try:
            yield from self.pipeline.run_stages(Stage.RESUME, Stage.RESUME)
        except CheckpointError as exc:
            self._report_failure(Stage.RESUME.value, exc)
            return
        self.last_result = self.provider.last_result
        self._publish("resumed", self._reply())

    # -- metrics --------------------------------------------------------------

    @property
    def branch_point(self):
        """The storage branch point of the last checkpoint, if any."""
        for provider in self.pipeline.providers:
            if isinstance(provider, BranchProvider):
                return provider.last_branch_point
        return None

    @property
    def clock_handoff(self):
        """The saved clock-discipline state of the last checkpoint."""
        for provider in self.pipeline.providers:
            if isinstance(provider, ClockProvider):
                return provider.last_handoff
        return None

    @property
    def frozen_at(self) -> int:
        return self.checkpointer.domain.kernel.firewall.last_clock_frozen_at_ns

    @property
    def thawed_at(self) -> int:
        return self.checkpointer.domain.kernel.firewall.last_clock_thawed_at_ns


class DelayNodeAgent(_PipelineAgent):
    """Checkpoint agent on a delay node (Dummynet serializer, §4.4)."""

    #: cost of serializing pipe state non-destructively
    SERIALIZE_COST_NS = DelayNodeProvider.SERIALIZE_COST_NS

    def __init__(self, sim: Simulator, name: str, delay_node: DelayNode,
                 clock: SystemClock, bus: NotificationBus,
                 session: str = "ckpt",
                 policy: Optional[SuspendPolicy] = None,
                 tracer: Optional[Tracer] = None) -> None:
        super().__init__(sim, name, clock, bus, session, policy)
        self.delay_node = delay_node
        self.provider = DelayNodeProvider(
            delay_node, serialize_cost_ns=self.SERIALIZE_COST_NS)
        self.pipeline = CheckpointPipeline(sim, [self.provider],
                                           tracer=tracer,
                                           session=f"{session}/{name}")

    def _prepare_impl(self) -> None:
        # Dummynet state is tiny; nothing to pre-copy — the stages run
        # synchronously and the ack goes out in the same callback.
        self.pipeline.run_stages_now(Stage.PREPARE, Stage.PRECOPY)
        self._publish("ready", self._reply())

    def _suspend(self):
        if self._aborting:
            return
        try:
            yield from self.pipeline.run_stages(Stage.QUIESCE, Stage.BRANCH)
        except CheckpointError as exc:
            self._report_failure(Stage.SAVE.value, exc)
            return
        if self._aborting:
            return
        self._publish("saved", self._reply())

    def _on_resume(self, msg: BusMessage) -> None:
        if self._detached or self._stale(msg):
            return
        if not self.pipeline.completed(Stage.SAVE):
            self._report_failure(
                Stage.RESUME.value,
                CheckpointError(f"{self.name}: resume before save"))
            return
        # Thawing is zero-time: run it synchronously on receipt, so the
        # resume skew stays one bus-delivery jitter.
        self.pipeline.run_stages_now(Stage.RESUME, Stage.RESUME)
        self._publish("resumed", self._reply())

    @property
    def last_snapshot(self) -> Optional[DelayNodeSnapshot]:
        return self.provider.last_snapshot

    @property
    def frozen_at(self) -> int:
        return self.provider.frozen_at

    @property
    def thawed_at(self) -> int:
        return self.provider.thawed_at


@dataclass
class CoordinatedResult:
    """Metrics of one distributed checkpoint."""

    scheduled_deadline_local_ns: Optional[int]
    node_results: Dict[str, CheckpointResult]
    delay_snapshots: Dict[str, DelayNodeSnapshot]
    suspend_skew_ns: int
    resume_skew_ns: int
    core_packets_captured: int
    endpoint_packets_replayed: int
    wall_duration_ns: int
    #: per-agent, per-stage true-time totals from the pipelines
    stage_timings_ns: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: per-node storage branch points (agents with a BranchProvider)
    branch_points: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return True


class _StageAbort:
    """Sentinel delivered through a barrier event on timeout/failure."""

    def __init__(self, reason: str) -> None:
        self.reason = reason


class Coordinator:
    """Runs coordinated checkpoints over a set of pipeline agents."""

    def __init__(self, sim: Simulator, bus: NotificationBus,
                 server_clock: SystemClock,
                 node_agents: List[NodeAgent],
                 delay_agents: Optional[List[DelayNodeAgent]] = None,
                 margin_ns: int = 100 * MS, session: str = "ckpt",
                 stage_timeout_ns: Optional[int] = 30 * SECOND,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.bus = bus
        self.server_clock = server_clock
        self.node_agents = node_agents
        self.delay_agents = delay_agents or []
        self.margin_ns = margin_ns
        self.session = session
        self.stage_timeout_ns = stage_timeout_ns
        self.tracer = tracer
        self.results: List[CoordinatedResult] = []
        self.failures: List[CheckpointFailure] = []
        self._ready: Optional[Barrier] = None
        self._saved: Optional[Barrier] = None
        self._resumed: Optional[Barrier] = None
        self._aborted: Optional[Barrier] = None
        self._watched: Optional[Barrier] = None
        self._agent_failures: List[AgentFailure] = []
        #: current round number — replies tagged with an older epoch are
        #: retransmitted stragglers from an aborted round and are dropped
        self.epoch = 0
        #: agents removed from the quorum (degraded checkpoints)
        self.excluded: set = set()
        self.stale_replies = 0

        def arrive(barrier_name):
            def handler(message):
                payload = message.payload
                if isinstance(payload, tuple):
                    name, epoch = payload
                    if isinstance(epoch, int) and epoch != self.epoch:
                        self.stale_replies += 1
                        maybe_record(self.tracer, "barrier.stale",
                                     session=self.session,
                                     barrier=barrier_name.lstrip("_"),
                                     agent=name, epoch=epoch,
                                     current=self.epoch)
                        return
                else:
                    name = payload
                if name in self.excluded:
                    return
                barrier = getattr(self, barrier_name)
                if barrier is not None:
                    barrier.arrive(name)
            return handler

        bus.subscribe(f"{session}/ready", f"coordinator/{session}",
                      arrive("_ready"))
        bus.subscribe(f"{session}/saved", f"coordinator/{session}",
                      arrive("_saved"))
        bus.subscribe(f"{session}/resumed", f"coordinator/{session}",
                      arrive("_resumed"))
        bus.subscribe(f"{session}/aborted", f"coordinator/{session}",
                      arrive("_aborted"))
        bus.subscribe(f"{session}/failed", f"coordinator/{session}",
                      self._on_failed)

    @property
    def participant_names(self) -> List[str]:
        return ([a.name for a in self.node_agents] +
                [a.name for a in self.delay_agents])

    @property
    def active_node_agents(self) -> List[NodeAgent]:
        return [a for a in self.node_agents if a.name not in self.excluded]

    @property
    def active_delay_agents(self) -> List[DelayNodeAgent]:
        return [a for a in self.delay_agents if a.name not in self.excluded]

    @property
    def active_participant_names(self) -> List[str]:
        return ([a.name for a in self.active_node_agents] +
                [a.name for a in self.active_delay_agents])

    @property
    def _participants(self) -> int:
        return len(self.active_node_agents) + len(self.active_delay_agents)

    def exclude(self, names) -> None:
        """Drop agents from the quorum for all future rounds.

        Degradation hook: a supervisor that decides a checkpoint may
        proceed without its dead delay nodes excludes them here before
        retrying.  Excluded agents may still hear the rounds; their
        replies are ignored and no barrier waits for them.
        """
        self.excluded.update(names)

    def detach(self) -> None:
        """Stop listening on the bus (when replaced by another coordinator).

        Note: unsubscribing removes every handler registered under the
        subscriber name "coordinator", so detach the old coordinator
        *before* constructing its replacement.
        """
        for topic in (f"{self.session}/ready", f"{self.session}/saved",
                      f"{self.session}/resumed", f"{self.session}/aborted",
                      f"{self.session}/failed"):
            self.bus.unsubscribe(topic, f"coordinator/{self.session}")

    # -- public API ------------------------------------------------------------------

    def checkpoint_scheduled(self):
        """Start a clock-scheduled checkpoint; returns a sim process."""
        return self.sim.process(self._run(scheduled=True))

    def checkpoint_now(self):
        """Start an event-driven checkpoint; returns a sim process."""
        return self.sim.process(self._run(scheduled=False))

    # -- failure intake --------------------------------------------------------------

    def _on_failed(self, message: BusMessage) -> None:
        failure = message.payload
        if failure.epoch not in (-1, self.epoch):
            self.stale_replies += 1
            return
        if failure.node in self.excluded:
            return
        if failure in self._agent_failures:
            return      # retransmitted/duplicated failure report
        self._agent_failures.append(failure)
        barrier = self._watched
        if barrier is not None and not barrier.event.triggered:
            barrier.event.succeed(_StageAbort(
                f"agent failure: {failure.node} at {failure.stage}"))

    # -- protocol ---------------------------------------------------------------------

    def _round_span(self, name: str):
        """Open a ``checkpoint.round`` span on the coordinator track."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled_for("checkpoint.round"):
            return NULL_SPAN
        return tracer.span("checkpoint.round",
                           track=f"coordinator/{self.session}", name=name,
                           session=self.session, epoch=self.epoch)

    def _run(self, scheduled: bool):
        started = self.sim.now
        self.epoch += 1
        session_span = NULL_SPAN
        tracer = self.tracer
        if tracer is not None and tracer.enabled_for("checkpoint.session"):
            session_span = tracer.span(
                "checkpoint.session", track=f"coordinator/{self.session}",
                name=f"{self.session}#{self.epoch}", session=self.session,
                epoch=self.epoch, scheduled=scheduled)
        self._agent_failures = []
        expected = self._participants
        self._ready = Barrier(self.sim, expected,
                              name=f"{self.session}/ready",
                              tracer=self.tracer)
        self._saved = Barrier(self.sim, expected,
                              name=f"{self.session}/saved",
                              tracer=self.tracer)
        self._resumed = Barrier(self.sim, expected,
                                name=f"{self.session}/resumed",
                                tracer=self.tracer)

        # Round 1: prepare (pre-copy).  Every round carries the epoch so
        # agents and coordinator can drop another round's stragglers.
        round_span = self._round_span("prepare")
        self.bus.publish(f"{self.session}/prepare", self.epoch,
                         publisher="coordinator")
        got = yield from self._await(self._ready)
        if isinstance(got, _StageAbort):
            round_span.end(outcome="abort")
            failure = yield from self._abort_round(self._ready, got,
                                                   "prepare", started)
            session_span.end(outcome="aborted", stage="prepare")
            return failure
        round_span.end(outcome="ok")

        # Round 2: trigger the synchronized suspend.
        deadline = None
        round_span = self._round_span("save")
        if scheduled:
            deadline = self.server_clock.read() + self.margin_ns
            self.bus.publish(f"{self.session}/suspend_at",
                             (self.epoch, deadline),
                             publisher="coordinator")
        else:
            self.bus.publish(f"{self.session}/now", self.epoch,
                             publisher="coordinator")

        # Round 3: barrier on saved.
        got = yield from self._await(self._saved)
        if isinstance(got, _StageAbort):
            round_span.end(outcome="abort")
            failure = yield from self._abort_round(self._saved, got,
                                                   "save", started)
            session_span.end(outcome="aborted", stage="save")
            return failure
        round_span.end(outcome="ok")

        # Round 4: resume everyone.
        round_span = self._round_span("resume")
        self.bus.publish(f"{self.session}/resume", self.epoch,
                         publisher="coordinator")
        got = yield from self._await(self._resumed)
        if isinstance(got, _StageAbort):
            round_span.end(outcome="abort")
            failure = yield from self._abort_round(self._resumed, got,
                                                   "resume", started)
            session_span.end(outcome="aborted", stage="resume")
            return failure
        round_span.end(outcome="ok")

        result = self._collect(deadline, started)
        self.results.append(result)
        self._clear_barriers()
        session_span.end(outcome="ok")
        return result

    def _await(self, barrier: Barrier):
        """Wait on a barrier; a timeout or agent failure resolves it with
        a :class:`_StageAbort` sentinel instead of wedging forever."""
        handle = None
        if self.stage_timeout_ns is not None:
            def expire() -> None:
                if not barrier.event.triggered:
                    barrier.event.succeed(_StageAbort("stage timeout"))
            handle = self.sim.call_in(self.stage_timeout_ns, expire)
        self._watched = barrier
        got = yield barrier.event
        self._watched = None
        if handle is not None:
            handle.cancel()
        return got

    def _abort_round(self, barrier: Barrier, signal: _StageAbort,
                     stage: str, started: int):
        """Phase two of the abort: roll every reachable agent back."""
        abort_span = self._round_span("abort").annotate(
            failed_stage=stage, reason=signal.reason)
        arrived = set(barrier.arrived)
        missing = tuple(n for n in self.active_participant_names
                        if n not in arrived)
        aborted = Barrier(self.sim, self._participants,
                          name=f"{self.session}/aborted",
                          tracer=self.tracer)
        self._aborted = aborted
        self.bus.publish(f"{self.session}/abort", self.epoch,
                         publisher="coordinator")
        # Dead agents never ack; the same timeout bounds the abort round,
        # and whoever acked by then counts as rolled back.
        yield from self._await(aborted)
        self._aborted = None
        failure = CheckpointFailure(
            session=self.session,
            stage=stage,
            reason=signal.reason,
            missing=missing,
            agent_failures=tuple(self._agent_failures),
            rolled_back=tuple(aborted.arrived),
            wall_duration_ns=self.sim.now - started,
            suspected_dead=self._suspected_dead(missing),
        )
        self.failures.append(failure)
        self._clear_barriers()
        abort_span.end(rolled_back=len(failure.rolled_back),
                       missing=len(missing))
        maybe_record(self.tracer, "checkpoint.abort", session=self.session,
                     stage=stage, reason=signal.reason,
                     missing=missing, rolled_back=failure.rolled_back,
                     suspected_dead=failure.suspected_dead)
        return failure

    def _suspected_dead(self, missing) -> tuple:
        """Split ``missing`` into dead vs merely slow/unreachable.

        An agent is suspected dead when it is detached (fail-stop crash)
        or the reliable bus exhausted its retransmits toward it; anyone
        else who missed the barrier is assumed slow or cut off and may
        still come back.
        """
        detached = {a.name
                    for a in self.node_agents + self.delay_agents
                    if a._detached}
        return tuple(n for n in missing
                     if n in detached or self.bus.suspects.get(n))

    def _clear_barriers(self) -> None:
        self._ready = self._saved = self._resumed = None

    def _collect(self, deadline, started) -> CoordinatedResult:
        nodes = self.active_node_agents
        delays = self.active_delay_agents
        freeze_times = ([a.frozen_at for a in nodes] +
                        [a.frozen_at for a in delays])
        thaw_times = ([a.thawed_at for a in nodes] +
                      [a.thawed_at for a in delays])
        node_results = {a.name: a.last_result for a in nodes}
        delay_snaps = {a.name: a.last_snapshot for a in delays}
        stage_timings = {a.name: a.pipeline.timings_by_stage()
                         for a in nodes + delays}
        branch_points = {a.name: a.branch_point for a in nodes
                         if a.branch_point is not None}
        return CoordinatedResult(
            scheduled_deadline_local_ns=deadline,
            node_results=node_results,
            delay_snapshots=delay_snaps,
            suspend_skew_ns=max(freeze_times) - min(freeze_times)
            if freeze_times else 0,
            resume_skew_ns=max(thaw_times) - min(thaw_times)
            if thaw_times else 0,
            core_packets_captured=sum(
                s.packets_in_flight for s in delay_snaps.values() if s),
            endpoint_packets_replayed=sum(
                r.replayed_packets for r in node_results.values() if r),
            wall_duration_ns=self.sim.now - started,
            stage_timings_ns=stage_timings,
            branch_points=branch_points,
        )

"""Coordinated distributed checkpoint (§4.3–4.4).

The protocol reconciles two requirements: atomicity across the network
(every node suspends at "the same" instant) and capturing the network core
(delay nodes serialize their Dummynet state).  It runs in four rounds over
the notification bus:

1. ``prepare`` — every node agent pre-copies its domain's memory (live);
   delay-node agents have nothing to pre-copy.  Each replies ``ready``.
2. ``suspend_at T`` — the coordinator picks a wall-clock deadline ``T``
   (its own NTP-disciplined clock plus a margin) and publishes it.  Each
   agent arms a local timer against its *own* disciplined clock, so the
   realized suspend skew equals the residual clock-synchronization error —
   the paper's transparency bound.  (``checkpoint_now`` instead suspends on
   message receipt: skew = control-network delivery jitter.)
3. Agents suspend, save, and report ``saved``; the coordinator's barrier
   waits for all of them.
4. ``resume`` — all agents thaw on receipt, so resume skew is again one
   bus-delivery jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.bus import Barrier, BusMessage, NotificationBus
from repro.clocksync.clock import SystemClock
from repro.errors import CheckpointError
from repro.net.delaynode import DelayNode, DelayNodeSnapshot
from repro.sim.core import Simulator
from repro.units import MS, US
from repro.xen.checkpoint import CheckpointResult, LocalCheckpointer


class NodeAgent:
    """Checkpoint agent running in dom0 of one experiment node."""

    def __init__(self, sim: Simulator, name: str,
                 checkpointer: LocalCheckpointer, clock: SystemClock,
                 bus: NotificationBus, session: str = "ckpt") -> None:
        self.sim = sim
        self.name = name
        self.checkpointer = checkpointer
        self.clock = clock
        self.bus = bus
        self.session = session
        self.last_result: Optional[CheckpointResult] = None
        self._started = 0
        self._precopy = (0, 0)
        self._saved = None
        bus.subscribe(f"{session}/prepare", name, self._on_prepare)
        bus.subscribe(f"{session}/suspend_at", name, self._on_suspend_at)
        bus.subscribe(f"{session}/now", name, self._on_now)
        bus.subscribe(f"{session}/resume", name, self._on_resume)

    # -- round 1: prepare -----------------------------------------------------

    def _on_prepare(self, _msg: BusMessage) -> None:
        self.sim.process(self._prepare())

    def _prepare(self):
        self._started = self.sim.now
        self._precopy = yield from self.checkpointer.precopy()
        self.bus.publish(f"{self.session}/ready", self.name,
                         publisher=self.name)

    # -- round 2: suspend -------------------------------------------------------

    def _on_suspend_at(self, msg: BusMessage) -> None:
        deadline_local = msg.payload
        delay = self.clock.ns_until_local(deadline_local)
        self.sim.call_in(delay, lambda: self.sim.process(self._suspend()))

    def _on_now(self, _msg: BusMessage) -> None:
        self.sim.process(self._suspend())

    def _suspend(self):
        self._saved = yield from self.checkpointer.suspend_and_save()
        self.bus.publish(f"{self.session}/saved", self.name,
                         publisher=self.name)

    # -- round 4: resume ----------------------------------------------------------

    def _on_resume(self, _msg: BusMessage) -> None:
        self.sim.process(self._resume())

    def _resume(self):
        if self._saved is None:
            raise CheckpointError(f"{self.name}: resume before save")
        snapshot, dirty = self._saved
        memory_copied, precopy_ns = self._precopy
        result = yield from self.checkpointer.resume(
            self._started, precopy_ns, memory_copied, snapshot, dirty)
        self.checkpointer.results.append(result)
        self.last_result = result
        self._saved = None
        self.bus.publish(f"{self.session}/resumed", self.name,
                         publisher=self.name)

    # -- metrics -----------------------------------------------------------------

    @property
    def frozen_at(self) -> int:
        return self.checkpointer.domain.kernel.firewall.last_clock_frozen_at_ns

    @property
    def thawed_at(self) -> int:
        return self.checkpointer.domain.kernel.firewall.last_clock_thawed_at_ns


class DelayNodeAgent:
    """Checkpoint agent on a delay node (Dummynet serializer, §4.4)."""

    #: cost of serializing pipe state non-destructively
    SERIALIZE_COST_NS = 300 * US

    def __init__(self, sim: Simulator, name: str, delay_node: DelayNode,
                 clock: SystemClock, bus: NotificationBus,
                 session: str = "ckpt") -> None:
        self.sim = sim
        self.name = name
        self.delay_node = delay_node
        self.clock = clock
        self.bus = bus
        self.session = session
        self.last_snapshot: Optional[DelayNodeSnapshot] = None
        self.frozen_at = 0
        self.thawed_at = 0
        bus.subscribe(f"{session}/prepare", name, self._on_prepare)
        bus.subscribe(f"{session}/suspend_at", name, self._on_suspend_at)
        bus.subscribe(f"{session}/now", name, self._on_now)
        bus.subscribe(f"{session}/resume", name, self._on_resume)

    def _on_prepare(self, _msg: BusMessage) -> None:
        # Dummynet state is tiny; nothing to pre-copy.
        self.bus.publish(f"{self.session}/ready", self.name,
                         publisher=self.name)

    def _on_suspend_at(self, msg: BusMessage) -> None:
        delay = self.clock.ns_until_local(msg.payload)
        self.sim.call_in(delay, lambda: self.sim.process(self._suspend()))

    def _on_now(self, _msg: BusMessage) -> None:
        self.sim.process(self._suspend())

    def _suspend(self):
        self.delay_node.freeze()
        self.frozen_at = self.sim.now
        yield self.sim.timeout(self.SERIALIZE_COST_NS)
        self.last_snapshot = self.delay_node.capture_state()
        self.bus.publish(f"{self.session}/saved", self.name,
                         publisher=self.name)

    def _on_resume(self, _msg: BusMessage) -> None:
        self.delay_node.thaw()
        self.thawed_at = self.sim.now
        self.bus.publish(f"{self.session}/resumed", self.name,
                         publisher=self.name)


@dataclass
class CoordinatedResult:
    """Metrics of one distributed checkpoint."""

    scheduled_deadline_local_ns: Optional[int]
    node_results: Dict[str, CheckpointResult]
    delay_snapshots: Dict[str, DelayNodeSnapshot]
    suspend_skew_ns: int
    resume_skew_ns: int
    core_packets_captured: int
    endpoint_packets_replayed: int
    wall_duration_ns: int


class Coordinator:
    """Runs coordinated checkpoints over a set of agents."""

    def __init__(self, sim: Simulator, bus: NotificationBus,
                 server_clock: SystemClock,
                 node_agents: List[NodeAgent],
                 delay_agents: Optional[List[DelayNodeAgent]] = None,
                 margin_ns: int = 100 * MS, session: str = "ckpt") -> None:
        self.sim = sim
        self.bus = bus
        self.server_clock = server_clock
        self.node_agents = node_agents
        self.delay_agents = delay_agents or []
        self.margin_ns = margin_ns
        self.session = session
        self.results: List[CoordinatedResult] = []
        self._ready: Optional[Barrier] = None
        self._saved: Optional[Barrier] = None
        self._resumed: Optional[Barrier] = None
        total = len(node_agents) + len(self.delay_agents)

        def arrive(barrier_name):
            def handler(message):
                barrier = getattr(self, barrier_name)
                if barrier is not None:
                    barrier.arrive(message.payload)
            return handler

        bus.subscribe(f"{session}/ready", f"coordinator/{session}",
                      arrive("_ready"))
        bus.subscribe(f"{session}/saved", f"coordinator/{session}",
                      arrive("_saved"))
        bus.subscribe(f"{session}/resumed", f"coordinator/{session}",
                      arrive("_resumed"))
        self._participants = total

    def detach(self) -> None:
        """Stop listening on the bus (when replaced by another coordinator).

        Note: unsubscribing removes every handler registered under the
        subscriber name "coordinator", so detach the old coordinator
        *before* constructing its replacement.
        """
        for topic in (f"{self.session}/ready", f"{self.session}/saved",
                      f"{self.session}/resumed"):
            self.bus.unsubscribe(topic, f"coordinator/{self.session}")

    # -- public API ------------------------------------------------------------------

    def checkpoint_scheduled(self):
        """Start a clock-scheduled checkpoint; returns a sim process."""
        return self.sim.process(self._run(scheduled=True))

    def checkpoint_now(self):
        """Start an event-driven checkpoint; returns a sim process."""
        return self.sim.process(self._run(scheduled=False))

    # -- protocol ---------------------------------------------------------------------

    def _run(self, scheduled: bool):
        started = self.sim.now
        self._ready = Barrier(self.sim, self._participants)
        self._saved = Barrier(self.sim, self._participants)
        self._resumed = Barrier(self.sim, self._participants)

        # Round 1: prepare (pre-copy).
        self.bus.publish(f"{self.session}/prepare",
                         publisher="coordinator")
        yield self._ready.event

        # Round 2: trigger the synchronized suspend.
        deadline = None
        if scheduled:
            deadline = self.server_clock.read() + self.margin_ns
            self.bus.publish(f"{self.session}/suspend_at", deadline,
                             publisher="coordinator")
        else:
            self.bus.publish(f"{self.session}/now",
                             publisher="coordinator")

        # Round 3: barrier on saved.
        yield self._saved.event

        # Round 4: resume everyone.
        self.bus.publish(f"{self.session}/resume",
                         publisher="coordinator")
        yield self._resumed.event

        result = self._collect(deadline, started)
        self.results.append(result)
        return result

    def _collect(self, deadline, started) -> CoordinatedResult:
        freeze_times = ([a.frozen_at for a in self.node_agents] +
                        [a.frozen_at for a in self.delay_agents])
        thaw_times = ([a.thawed_at for a in self.node_agents] +
                      [a.thawed_at for a in self.delay_agents])
        node_results = {a.name: a.last_result for a in self.node_agents}
        delay_snaps = {a.name: a.last_snapshot for a in self.delay_agents}
        return CoordinatedResult(
            scheduled_deadline_local_ns=deadline,
            node_results=node_results,
            delay_snapshots=delay_snaps,
            suspend_skew_ns=max(freeze_times) - min(freeze_times)
            if freeze_times else 0,
            resume_skew_ns=max(thaw_times) - min(thaw_times)
            if thaw_times else 0,
            core_packets_captured=sum(
                s.packets_in_flight for s in delay_snaps.values() if s),
            endpoint_packets_replayed=sum(
                r.replayed_packets for r in node_results.values() if r),
            wall_duration_ns=self.sim.now - started,
        )

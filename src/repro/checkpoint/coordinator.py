"""Coordinated distributed checkpoint (§4.3–4.4).

The protocol reconciles two requirements: atomicity across the network
(every node suspends at "the same" instant) and capturing the network core
(delay nodes serialize their Dummynet state).  It runs in four rounds over
the notification bus:

1. ``prepare`` — every node agent runs the pipeline's ``prepare`` and
   ``precopy`` stages (live memory copy; delay-node agents have nothing
   to pre-copy).  Each replies ``ready``.
2. ``suspend_at T`` — the coordinator picks a wall-clock deadline ``T``
   (its own NTP-disciplined clock plus a margin) and publishes it.  Each
   agent's :class:`~repro.checkpoint.pipeline.SuspendPolicy` arms a local
   timer against its *own* disciplined clock, so the realized suspend
   skew equals the residual clock-synchronization error — the paper's
   transparency bound.  (``checkpoint_now`` instead suspends on message
   receipt: skew = control-network delivery jitter.)
3. Agents run ``quiesce → suspend → save → branch`` and report
   ``saved``; the coordinator's barrier waits for all of them.
4. ``resume`` — all agents thaw on receipt, so resume skew is again one
   bus-delivery jitter.

Every agent drives the same staged engine
(:class:`~repro.checkpoint.pipeline.CheckpointPipeline`); the coordinator
owns only barriers and failure semantics.  A barrier that times out, or
an agent that publishes a structured ``failed`` report, triggers the
**two-phase abort**: the coordinator publishes ``abort``, every agent
rolls its providers back to running state (pipeline ``abort``) and acks
``aborted``, and the checkpoint returns a
:class:`~repro.checkpoint.pipeline.CheckpointFailure` instead of wedging
the barrier forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.bus import Barrier, BusMessage, NotificationBus
from repro.checkpoint.pipeline import (AgentFailure, BranchProvider,
                                       CheckpointFailure, CheckpointPipeline,
                                       ClockProvider, DeadlineSuspend,
                                       DelayNodeProvider, DomainProvider,
                                       Stage, StageFailed, SuspendPolicy)
from repro.clocksync.clock import SystemClock
from repro.errors import CheckpointError, FirewallViolation, StorageError
from repro.net.delaynode import DelayNode, DelayNodeSnapshot
from repro.sim.core import Simulator
from repro.sim.trace import Tracer, maybe_record
from repro.units import MS, SECOND
from repro.xen.checkpoint import CheckpointResult, LocalCheckpointer


class _PipelineAgent:
    """Bus plumbing shared by node and delay-node agents.

    Subclasses own a :class:`CheckpointPipeline`; this base wires the
    session topics, arms the suspend policy, and routes stage failures
    into structured ``failed`` reports instead of letting a
    :class:`CheckpointError` escape a bus callback into the simulator
    loop.
    """

    def __init__(self, sim: Simulator, name: str, clock: SystemClock,
                 bus: NotificationBus, session: str,
                 policy: Optional[SuspendPolicy]) -> None:
        self.sim = sim
        self.name = name
        self.clock = clock
        self.bus = bus
        self.session = session
        self.policy = policy or DeadlineSuspend()
        self.last_failure: Optional[AgentFailure] = None
        self._suspend_arm = None
        self._aborting = False
        self._detached = False
        bus.subscribe(f"{session}/prepare", name, self._on_prepare)
        bus.subscribe(f"{session}/suspend_at", name, self._on_suspend_at)
        bus.subscribe(f"{session}/now", name, self._on_now)
        bus.subscribe(f"{session}/resume", name, self._on_resume)
        bus.subscribe(f"{session}/abort", name, self._on_abort)

    # Subclasses provide the pipeline.
    pipeline: CheckpointPipeline

    def kill(self) -> None:
        """Stop responding to the bus (simulates an agent/node death)."""
        self._detached = True
        if self._suspend_arm is not None:
            self._suspend_arm.cancel()
            self._suspend_arm = None
        for topic in ("prepare", "suspend_at", "now", "resume", "abort"):
            self.bus.unsubscribe(f"{self.session}/{topic}", self.name)

    # -- failure routing ------------------------------------------------------

    def _report_failure(self, stage: str, exc: BaseException) -> None:
        if isinstance(exc, StageFailed):
            stage = exc.stage.value
        failure = AgentFailure(node=self.name, stage=stage, error=str(exc))
        self.last_failure = failure
        self.bus.publish(f"{self.session}/failed", failure,
                         publisher=self.name)

    # -- round 2 arming -------------------------------------------------------

    def _on_suspend_at(self, msg: BusMessage) -> None:
        def fire() -> None:
            self._suspend_arm = None
            self.sim.process(self._suspend())

        self._suspend_arm = self.policy.arm(self.sim, self.clock,
                                            msg.payload, fire)

    def _on_now(self, _msg: BusMessage) -> None:
        self.sim.process(self._suspend())

    # -- abort round ----------------------------------------------------------

    def _on_abort(self, _msg: BusMessage) -> None:
        self._aborting = True
        if self._suspend_arm is not None:
            self._suspend_arm.cancel()
            self._suspend_arm = None
        self.sim.process(self._abort())

    def _abort(self):
        try:
            yield from self.pipeline.abort()
        except (CheckpointError, FirewallViolation, StorageError) as exc:
            self._report_failure("abort", exc)
            return
        self.bus.publish(f"{self.session}/aborted", self.name,
                         publisher=self.name)

    # Subclass hooks ----------------------------------------------------------

    def _on_prepare(self, _msg: BusMessage) -> None:
        raise NotImplementedError

    def _suspend(self):
        raise NotImplementedError

    def _on_resume(self, _msg: BusMessage) -> None:
        raise NotImplementedError


class NodeAgent(_PipelineAgent):
    """Checkpoint agent running in dom0 of one experiment node.

    Drives the staged pipeline over a :class:`DomainProvider` plus any
    ``extra_providers`` (branching storage, clock hand-off) between the
    coordinator's bus rounds.
    """

    def __init__(self, sim: Simulator, name: str,
                 checkpointer: LocalCheckpointer, clock: SystemClock,
                 bus: NotificationBus, session: str = "ckpt",
                 policy: Optional[SuspendPolicy] = None,
                 tracer: Optional[Tracer] = None,
                 extra_providers=()) -> None:
        super().__init__(sim, name, clock, bus, session, policy)
        self.checkpointer = checkpointer
        self.provider = DomainProvider(checkpointer)
        self.pipeline = CheckpointPipeline(
            sim, [self.provider, *extra_providers], tracer=tracer,
            session=f"{session}/{name}")
        self.last_result: Optional[CheckpointResult] = None

    # -- round 1: prepare -----------------------------------------------------

    def _on_prepare(self, _msg: BusMessage) -> None:
        self._aborting = False
        self.sim.process(self._prepare())

    def _prepare(self):
        try:
            yield from self.pipeline.run_stages(Stage.PREPARE, Stage.PRECOPY)
        except CheckpointError as exc:
            self._report_failure(Stage.PRECOPY.value, exc)
            return
        if self._aborting:
            return
        self.bus.publish(f"{self.session}/ready", self.name,
                         publisher=self.name)

    # -- round 3: suspend/save/branch -----------------------------------------

    def _suspend(self):
        if self._aborting:
            return
        try:
            yield from self.pipeline.run_stages(Stage.QUIESCE, Stage.BRANCH)
        except CheckpointError as exc:
            self._report_failure(Stage.SAVE.value, exc)
            return
        if self._aborting:
            return
        self.bus.publish(f"{self.session}/saved", self.name,
                         publisher=self.name)

    # -- round 4: resume ------------------------------------------------------

    def _on_resume(self, _msg: BusMessage) -> None:
        self.sim.process(self._resume())

    def _resume(self):
        if not self.pipeline.completed(Stage.SAVE):
            self._report_failure(
                Stage.RESUME.value,
                CheckpointError(f"{self.name}: resume before save"))
            return
        try:
            yield from self.pipeline.run_stages(Stage.RESUME, Stage.RESUME)
        except CheckpointError as exc:
            self._report_failure(Stage.RESUME.value, exc)
            return
        self.last_result = self.provider.last_result
        self.bus.publish(f"{self.session}/resumed", self.name,
                         publisher=self.name)

    # -- metrics --------------------------------------------------------------

    @property
    def branch_point(self):
        """The storage branch point of the last checkpoint, if any."""
        for provider in self.pipeline.providers:
            if isinstance(provider, BranchProvider):
                return provider.last_branch_point
        return None

    @property
    def clock_handoff(self):
        """The saved clock-discipline state of the last checkpoint."""
        for provider in self.pipeline.providers:
            if isinstance(provider, ClockProvider):
                return provider.last_handoff
        return None

    @property
    def frozen_at(self) -> int:
        return self.checkpointer.domain.kernel.firewall.last_clock_frozen_at_ns

    @property
    def thawed_at(self) -> int:
        return self.checkpointer.domain.kernel.firewall.last_clock_thawed_at_ns


class DelayNodeAgent(_PipelineAgent):
    """Checkpoint agent on a delay node (Dummynet serializer, §4.4)."""

    #: cost of serializing pipe state non-destructively
    SERIALIZE_COST_NS = DelayNodeProvider.SERIALIZE_COST_NS

    def __init__(self, sim: Simulator, name: str, delay_node: DelayNode,
                 clock: SystemClock, bus: NotificationBus,
                 session: str = "ckpt",
                 policy: Optional[SuspendPolicy] = None,
                 tracer: Optional[Tracer] = None) -> None:
        super().__init__(sim, name, clock, bus, session, policy)
        self.delay_node = delay_node
        self.provider = DelayNodeProvider(
            delay_node, serialize_cost_ns=self.SERIALIZE_COST_NS)
        self.pipeline = CheckpointPipeline(sim, [self.provider],
                                           tracer=tracer,
                                           session=f"{session}/{name}")

    def _on_prepare(self, _msg: BusMessage) -> None:
        self._aborting = False
        # Dummynet state is tiny; nothing to pre-copy — the stages run
        # synchronously and the ack goes out in the same callback.
        self.pipeline.run_stages_now(Stage.PREPARE, Stage.PRECOPY)
        self.bus.publish(f"{self.session}/ready", self.name,
                         publisher=self.name)

    def _suspend(self):
        if self._aborting:
            return
        try:
            yield from self.pipeline.run_stages(Stage.QUIESCE, Stage.BRANCH)
        except CheckpointError as exc:
            self._report_failure(Stage.SAVE.value, exc)
            return
        if self._aborting:
            return
        self.bus.publish(f"{self.session}/saved", self.name,
                         publisher=self.name)

    def _on_resume(self, _msg: BusMessage) -> None:
        if not self.pipeline.completed(Stage.SAVE):
            self._report_failure(
                Stage.RESUME.value,
                CheckpointError(f"{self.name}: resume before save"))
            return
        # Thawing is zero-time: run it synchronously on receipt, so the
        # resume skew stays one bus-delivery jitter.
        self.pipeline.run_stages_now(Stage.RESUME, Stage.RESUME)
        self.bus.publish(f"{self.session}/resumed", self.name,
                         publisher=self.name)

    @property
    def last_snapshot(self) -> Optional[DelayNodeSnapshot]:
        return self.provider.last_snapshot

    @property
    def frozen_at(self) -> int:
        return self.provider.frozen_at

    @property
    def thawed_at(self) -> int:
        return self.provider.thawed_at


@dataclass
class CoordinatedResult:
    """Metrics of one distributed checkpoint."""

    scheduled_deadline_local_ns: Optional[int]
    node_results: Dict[str, CheckpointResult]
    delay_snapshots: Dict[str, DelayNodeSnapshot]
    suspend_skew_ns: int
    resume_skew_ns: int
    core_packets_captured: int
    endpoint_packets_replayed: int
    wall_duration_ns: int
    #: per-agent, per-stage true-time totals from the pipelines
    stage_timings_ns: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: per-node storage branch points (agents with a BranchProvider)
    branch_points: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return True


class _StageAbort:
    """Sentinel delivered through a barrier event on timeout/failure."""

    def __init__(self, reason: str) -> None:
        self.reason = reason


class Coordinator:
    """Runs coordinated checkpoints over a set of pipeline agents."""

    def __init__(self, sim: Simulator, bus: NotificationBus,
                 server_clock: SystemClock,
                 node_agents: List[NodeAgent],
                 delay_agents: Optional[List[DelayNodeAgent]] = None,
                 margin_ns: int = 100 * MS, session: str = "ckpt",
                 stage_timeout_ns: Optional[int] = 30 * SECOND,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.bus = bus
        self.server_clock = server_clock
        self.node_agents = node_agents
        self.delay_agents = delay_agents or []
        self.margin_ns = margin_ns
        self.session = session
        self.stage_timeout_ns = stage_timeout_ns
        self.tracer = tracer
        self.results: List[CoordinatedResult] = []
        self.failures: List[CheckpointFailure] = []
        self._ready: Optional[Barrier] = None
        self._saved: Optional[Barrier] = None
        self._resumed: Optional[Barrier] = None
        self._aborted: Optional[Barrier] = None
        self._watched: Optional[Barrier] = None
        self._agent_failures: List[AgentFailure] = []
        total = len(node_agents) + len(self.delay_agents)

        def arrive(barrier_name):
            def handler(message):
                barrier = getattr(self, barrier_name)
                if barrier is not None:
                    barrier.arrive(message.payload)
            return handler

        bus.subscribe(f"{session}/ready", f"coordinator/{session}",
                      arrive("_ready"))
        bus.subscribe(f"{session}/saved", f"coordinator/{session}",
                      arrive("_saved"))
        bus.subscribe(f"{session}/resumed", f"coordinator/{session}",
                      arrive("_resumed"))
        bus.subscribe(f"{session}/aborted", f"coordinator/{session}",
                      arrive("_aborted"))
        bus.subscribe(f"{session}/failed", f"coordinator/{session}",
                      self._on_failed)
        self._participants = total

    @property
    def participant_names(self) -> List[str]:
        return ([a.name for a in self.node_agents] +
                [a.name for a in self.delay_agents])

    def detach(self) -> None:
        """Stop listening on the bus (when replaced by another coordinator).

        Note: unsubscribing removes every handler registered under the
        subscriber name "coordinator", so detach the old coordinator
        *before* constructing its replacement.
        """
        for topic in (f"{self.session}/ready", f"{self.session}/saved",
                      f"{self.session}/resumed", f"{self.session}/aborted",
                      f"{self.session}/failed"):
            self.bus.unsubscribe(topic, f"coordinator/{self.session}")

    # -- public API ------------------------------------------------------------------

    def checkpoint_scheduled(self):
        """Start a clock-scheduled checkpoint; returns a sim process."""
        return self.sim.process(self._run(scheduled=True))

    def checkpoint_now(self):
        """Start an event-driven checkpoint; returns a sim process."""
        return self.sim.process(self._run(scheduled=False))

    # -- failure intake --------------------------------------------------------------

    def _on_failed(self, message: BusMessage) -> None:
        failure = message.payload
        self._agent_failures.append(failure)
        barrier = self._watched
        if barrier is not None and not barrier.event.triggered:
            barrier.event.succeed(_StageAbort(
                f"agent failure: {failure.node} at {failure.stage}"))

    # -- protocol ---------------------------------------------------------------------

    def _run(self, scheduled: bool):
        started = self.sim.now
        self._agent_failures = []
        self._ready = Barrier(self.sim, self._participants)
        self._saved = Barrier(self.sim, self._participants)
        self._resumed = Barrier(self.sim, self._participants)

        # Round 1: prepare (pre-copy).
        self.bus.publish(f"{self.session}/prepare",
                         publisher="coordinator")
        got = yield from self._await(self._ready)
        if isinstance(got, _StageAbort):
            return (yield from self._abort_round(self._ready, got,
                                                 "prepare", started))

        # Round 2: trigger the synchronized suspend.
        deadline = None
        if scheduled:
            deadline = self.server_clock.read() + self.margin_ns
            self.bus.publish(f"{self.session}/suspend_at", deadline,
                             publisher="coordinator")
        else:
            self.bus.publish(f"{self.session}/now",
                             publisher="coordinator")

        # Round 3: barrier on saved.
        got = yield from self._await(self._saved)
        if isinstance(got, _StageAbort):
            return (yield from self._abort_round(self._saved, got,
                                                 "save", started))

        # Round 4: resume everyone.
        self.bus.publish(f"{self.session}/resume",
                         publisher="coordinator")
        got = yield from self._await(self._resumed)
        if isinstance(got, _StageAbort):
            return (yield from self._abort_round(self._resumed, got,
                                                 "resume", started))

        result = self._collect(deadline, started)
        self.results.append(result)
        self._clear_barriers()
        return result

    def _await(self, barrier: Barrier):
        """Wait on a barrier; a timeout or agent failure resolves it with
        a :class:`_StageAbort` sentinel instead of wedging forever."""
        handle = None
        if self.stage_timeout_ns is not None:
            def expire() -> None:
                if not barrier.event.triggered:
                    barrier.event.succeed(_StageAbort("stage timeout"))
            handle = self.sim.call_in(self.stage_timeout_ns, expire)
        self._watched = barrier
        got = yield barrier.event
        self._watched = None
        if handle is not None:
            handle.cancel()
        return got

    def _abort_round(self, barrier: Barrier, signal: _StageAbort,
                     stage: str, started: int):
        """Phase two of the abort: roll every reachable agent back."""
        arrived = set(barrier.arrived)
        missing = tuple(n for n in self.participant_names
                        if n not in arrived)
        aborted = Barrier(self.sim, self._participants)
        self._aborted = aborted
        self.bus.publish(f"{self.session}/abort", publisher="coordinator")
        # Dead agents never ack; the same timeout bounds the abort round,
        # and whoever acked by then counts as rolled back.
        yield from self._await(aborted)
        self._aborted = None
        failure = CheckpointFailure(
            session=self.session,
            stage=stage,
            reason=signal.reason,
            missing=missing,
            agent_failures=tuple(self._agent_failures),
            rolled_back=tuple(aborted.arrived),
            wall_duration_ns=self.sim.now - started,
        )
        self.failures.append(failure)
        self._clear_barriers()
        maybe_record(self.tracer, "checkpoint.abort", session=self.session,
                     stage=stage, reason=signal.reason,
                     missing=missing, rolled_back=failure.rolled_back)
        return failure

    def _clear_barriers(self) -> None:
        self._ready = self._saved = self._resumed = None

    def _collect(self, deadline, started) -> CoordinatedResult:
        freeze_times = ([a.frozen_at for a in self.node_agents] +
                        [a.frozen_at for a in self.delay_agents])
        thaw_times = ([a.thawed_at for a in self.node_agents] +
                      [a.thawed_at for a in self.delay_agents])
        node_results = {a.name: a.last_result for a in self.node_agents}
        delay_snaps = {a.name: a.last_snapshot for a in self.delay_agents}
        stage_timings = {a.name: a.pipeline.timings_by_stage()
                         for a in self.node_agents + self.delay_agents}
        branch_points = {a.name: a.branch_point for a in self.node_agents
                         if a.branch_point is not None}
        return CoordinatedResult(
            scheduled_deadline_local_ns=deadline,
            node_results=node_results,
            delay_snapshots=delay_snaps,
            suspend_skew_ns=max(freeze_times) - min(freeze_times)
            if freeze_times else 0,
            resume_skew_ns=max(thaw_times) - min(thaw_times)
            if thaw_times else 0,
            core_packets_captured=sum(
                s.packets_in_flight for s in delay_snaps.values() if s),
            endpoint_packets_replayed=sum(
                r.replayed_packets for r in node_results.values() if r),
            wall_duration_ns=self.sim.now - started,
            stage_timings_ns=stage_timings,
            branch_points=branch_points,
        )

"""Baseline checkpointers the paper argues against (§3, §8).

Three comparators for the ablation benchmarks:

* :class:`NaiveCheckpointer` — suspends execution but **not time** (no
  temporal firewall).  The guest observes the downtime: sleeping loops see
  giant iterations, expired TCP retransmit timers fire on resume.
* :class:`UncoordinatedRunner` — every node checkpoints on its own
  schedule (no clock-synchronized trigger, no delay-node capture).  While
  one node is down its peers keep running: packet delays, NIC-ring replay
  logs, retransmissions.
* :class:`RemusCheckpointer` — Remus-style continuous checkpointing with
  buffered output commit (Cully 2008): every epoch the domain's outbound
  packets are held until the epoch's state is committed, adding up to one
  epoch of latency and a release burst — "background state-saving and
  buffered I/O may harm realism" (§8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import CheckpointError
from repro.net.packet import Packet
from repro.sim.core import Simulator
from repro.units import MB, MS, transfer_time_ns
from repro.xen.checkpoint import CheckpointConfig, LocalCheckpointer
from repro.xen.hypervisor import Domain


class NaiveCheckpointer:
    """Stops the guest without virtualizing time (no temporal firewall).

    The suspension is externally identical to the transparent checkpoint —
    same downtime, same device handling — but the virtual clock and guest
    TSC keep running, so the guest wakes up ``downtime`` in its own future:
    timers have expired en masse and ``gettimeofday`` jumps.
    """

    def __init__(self, domain: Domain,
                 config: CheckpointConfig = CheckpointConfig()) -> None:
        self.domain = domain
        self.sim: Simulator = domain.sim
        self.config = config
        self.downtimes: List[int] = []

    def checkpoint(self):
        """Run one non-transparent checkpoint; returns a sim process."""
        return self.sim.process(self.run())

    def run(self):
        domain = self.domain
        kernel = domain.kernel
        cfg = self.config
        # Live pre-copy, identical to the transparent implementation.
        if cfg.live:
            duration = transfer_time_ns(domain.memory_bytes, cfg.copy_rate_bps)
            share = cfg.dom0_weight / (1.0 + cfg.dom0_weight)
            kernel.cpu_outside(int(duration * share), weight=cfg.dom0_weight)
            yield self.sim.timeout(duration)
        # Suspend devices and execution — but NOT the clock.
        for nic in domain.nics:
            nic.suspend()
        for vbd in domain.vbds:
            yield from vbd.suspend_after_drain()
        kernel.stop_user_execution()
        kernel.stop_kernel_execution()
        kernel.timers.freeze()
        suspended_at = self.sim.now
        dirty = (int(domain.memory_bytes * cfg.dirty_fraction)
                 if cfg.live else domain.memory_bytes)
        yield self.sim.timeout(transfer_time_ns(max(1, dirty),
                                                cfg.copy_rate_bps))
        yield self.sim.timeout(cfg.device_overhead_ns)
        downtime = self.sim.now - suspended_at
        self.downtimes.append(downtime)
        # Resume.  The virtual clock never froze: expired timers fire
        # immediately, and guest time has visibly jumped.
        kernel.timers.thaw()
        kernel.resume_kernel_execution()
        kernel.resume_user_execution()
        for vbd in domain.vbds:
            vbd.resume()
        replayed = 0
        for nic in domain.nics:
            replayed += nic.resume()
        return downtime, replayed


@dataclass
class UncoordinatedRunner:
    """Periodic independent checkpoints on a set of nodes.

    Each node checkpoints every ``period_ns``, with node *i* phase-shifted
    by ``i * stagger_ns``.  No clock synchronization, no coordinated
    suspend, no delay-node capture — the §3.2 anomalies follow.
    """

    sim: Simulator
    checkpointers: List[LocalCheckpointer]
    period_ns: int
    stagger_ns: int = 250 * MS
    started: bool = field(default=False, init=False)
    rounds: int = field(default=0, init=False)

    def start(self, rounds: int = 1) -> List:
        """Run ``rounds`` checkpoints on every node; returns the processes."""
        if self.started:
            raise CheckpointError("runner already started")
        self.started = True
        procs = []
        for i, ckpt in enumerate(self.checkpointers):
            procs.append(self.sim.process(self._node_loop(i, ckpt, rounds)))
        return procs

    def _node_loop(self, index: int, ckpt: LocalCheckpointer, rounds: int):
        yield self.sim.timeout(index * self.stagger_ns)
        for _ in range(rounds):
            yield from ckpt.run()
            yield self.sim.timeout(self.period_ns)


class RemusCheckpointer:
    """Continuous high-frequency checkpointing with buffered output.

    While running, all outbound packets of the domain's NICs are held in a
    commit buffer; at every epoch boundary the epoch's dirty state is
    copied (a short stop-and-copy) and the buffer is released.  Latency
    grows by up to one epoch plus the commit time; packets leave in bursts.
    """

    def __init__(self, domain: Domain, epoch_ns: int = 25 * MS,
                 dirty_per_epoch_bytes: int = 4 * MB,
                 copy_rate_bps: int = 400 * MB) -> None:
        self.domain = domain
        self.sim: Simulator = domain.sim
        self.epoch_ns = epoch_ns
        self.dirty_per_epoch_bytes = dirty_per_epoch_bytes
        self.copy_rate_bps = copy_rate_bps
        self._buffer: List[tuple] = []
        self._running = False
        self.epochs = 0
        self.packets_buffered = 0

    def start(self) -> None:
        """Begin continuous checkpointing."""
        if self._running:
            raise CheckpointError("Remus already running")
        self._running = True
        for nic in self.domain.nics:
            nic.iface.tx_interceptor = self._intercept(nic.iface)
        self.sim.process(self._epoch_loop())

    def stop(self) -> None:
        """Stop after the current epoch (buffer is flushed)."""
        self._running = False

    def _intercept(self, iface):
        def hold(packet: Packet) -> bool:
            if not self._running:
                return False
            self._buffer.append((iface, packet))
            self.packets_buffered += 1
            return True
        return hold

    def _epoch_loop(self):
        kernel = self.domain.kernel
        while self._running:
            yield self.sim.timeout(self.epoch_ns)
            # Commit: brief stop-and-copy of the epoch's dirty pages.
            commit_ns = transfer_time_ns(self.dirty_per_epoch_bytes,
                                         self.copy_rate_bps)
            kernel.cpu_outside(commit_ns // 2, weight=0.5)
            yield self.sim.timeout(commit_ns)
            self.epochs += 1
            self._flush()
        self._flush()
        for nic in self.domain.nics:
            nic.iface.tx_interceptor = None

    def _flush(self) -> None:
        buffered, self._buffer = self._buffer, []
        for iface, packet in buffered:
            iface.send_raw(packet)

"""Baseline checkpointers the paper argues against (§3, §8).

Three comparators for the ablation benchmarks, all thin drivers over the
same staged engine (:mod:`repro.checkpoint.pipeline`) as the transparent
checkpoint — what differs is only which providers participate and how
the stages are scheduled:

* :class:`NaiveCheckpointer` — suspends execution but **not time** (a
  :class:`~repro.checkpoint.pipeline.NaiveDomainProvider`: no temporal
  firewall).  The guest observes the downtime: sleeping loops see giant
  iterations, expired TCP retransmit timers fire on resume.
* :class:`UncoordinatedRunner` — every node runs its own full local
  pipeline on its own schedule (no clock-synchronized trigger, no
  delay-node capture).  While one node is down its peers keep running:
  packet delays, NIC-ring replay logs, retransmissions.
* :class:`RemusCheckpointer` — Remus-style continuous checkpointing with
  buffered output commit (Cully 2008): every epoch is a ``save →
  resume`` pipeline span — the domain's outbound packets are held until
  the epoch's state is committed, adding up to one epoch of latency and
  a release burst — "background state-saving and buffered I/O may harm
  realism" (§8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.checkpoint.pipeline import (Checkpointable, CheckpointPipeline,
                                       NaiveDomainProvider, Stage)
from repro.errors import CheckpointError
from repro.net.packet import Packet
from repro.sim.core import Simulator
from repro.units import MB, MS, transfer_time_ns
from repro.xen.checkpoint import CheckpointConfig, LocalCheckpointer
from repro.xen.hypervisor import Domain


class NaiveCheckpointer:
    """Stops the guest without virtualizing time (no temporal firewall).

    The suspension is externally identical to the transparent checkpoint —
    same downtime, same device handling — but the virtual clock and guest
    TSC keep running, so the guest wakes up ``downtime`` in its own future:
    timers have expired en masse and ``gettimeofday`` jumps.
    """

    def __init__(self, domain: Domain,
                 config: Optional[CheckpointConfig] = None) -> None:
        self.domain = domain
        self.sim: Simulator = domain.sim
        self.config = config if config is not None else CheckpointConfig()
        self.downtimes: List[int] = []
        self.provider = NaiveDomainProvider(domain, self.config)
        self.pipeline = CheckpointPipeline(self.sim, [self.provider],
                                           session=f"naive.{domain.name}")

    def checkpoint(self):
        """Run one non-transparent checkpoint; returns a sim process."""
        return self.sim.process(self.run())

    def run(self):
        yield from self.pipeline.run_local()
        downtime = self.provider.last_downtime_ns
        self.downtimes.append(downtime)
        return downtime, self.provider.last_replayed


@dataclass
class UncoordinatedRunner:
    """Periodic independent checkpoints on a set of nodes.

    Each node drives its own full local pipeline every ``period_ns``,
    with node *i* phase-shifted by ``i * stagger_ns``.  No clock
    synchronization, no coordinated suspend, no delay-node capture — the
    §3.2 anomalies follow.
    """

    sim: Simulator
    checkpointers: List[LocalCheckpointer]
    period_ns: int
    stagger_ns: int = 250 * MS
    started: bool = field(default=False, init=False)
    rounds: int = field(default=0, init=False)

    def start(self, rounds: int = 1) -> List:
        """Run ``rounds`` checkpoints on every node; returns the processes."""
        if self.started:
            raise CheckpointError("runner already started")
        self.started = True
        procs = []
        for i, ckpt in enumerate(self.checkpointers):
            procs.append(self.sim.process(self._node_loop(i, ckpt, rounds)))
        return procs

    def _node_loop(self, index: int, ckpt: LocalCheckpointer, rounds: int):
        yield self.sim.timeout(index * self.stagger_ns)
        for _ in range(rounds):
            yield from ckpt.run()
            yield self.sim.timeout(self.period_ns)


class RemusEpochProvider(Checkpointable):
    """One Remus epoch as a pipeline span: commit (save), release (resume).

    ``save`` is the brief stop-and-copy of the epoch's dirty pages;
    ``resume`` releases the output commit buffer.  ``abort`` also
    releases the buffer, so a coordinated rollback never strands held
    packets.
    """

    def __init__(self, remus: "RemusCheckpointer") -> None:
        self.remus = remus
        self.name = f"remus.{remus.domain.name}"

    def stage_save(self):
        remus = self.remus
        commit_ns = transfer_time_ns(remus.dirty_per_epoch_bytes,
                                     remus.copy_rate_bps)
        remus.domain.kernel.cpu_outside(commit_ns // 2, weight=0.5)
        yield remus.sim.timeout(commit_ns)

    def stage_resume(self):
        self.remus._flush()

    def stage_abort(self):
        self.remus._flush()


class RemusCheckpointer:
    """Continuous high-frequency checkpointing with buffered output.

    While running, all outbound packets of the domain's NICs are held in a
    commit buffer; at every epoch boundary the epoch's dirty state is
    copied (a short stop-and-copy) and the buffer is released.  Latency
    grows by up to one epoch plus the commit time; packets leave in bursts.
    """

    def __init__(self, domain: Domain, epoch_ns: int = 25 * MS,
                 dirty_per_epoch_bytes: int = 4 * MB,
                 copy_rate_bps: int = 400 * MB) -> None:
        self.domain = domain
        self.sim: Simulator = domain.sim
        self.epoch_ns = epoch_ns
        self.dirty_per_epoch_bytes = dirty_per_epoch_bytes
        self.copy_rate_bps = copy_rate_bps
        self._buffer: List[tuple] = []
        self._running = False
        self._generation = 0
        self.epochs = 0
        self.packets_buffered = 0
        self.provider = RemusEpochProvider(self)
        self.pipeline = CheckpointPipeline(self.sim, [self.provider],
                                           session=f"remus.{domain.name}")

    def start(self) -> None:
        """Begin continuous checkpointing."""
        if self._running:
            raise CheckpointError("Remus already running")
        self._running = True
        self._generation += 1
        for nic in self.domain.nics:
            nic.iface.tx_interceptor = self._intercept(nic.iface)
        self.sim.process(self._epoch_loop(self._generation))

    def stop(self) -> None:
        """Stop immediately: flush held packets, remove the interceptors.

        A stop during an in-flight epoch must not strand the commit
        buffer — new packets already bypass it the instant ``_running``
        drops, so a deferred flush would deliver the held packets *after*
        younger traffic (reordering) or never (if the run ends first).
        """
        if not self._running:
            return
        self._running = False
        self._flush()
        for nic in self.domain.nics:
            nic.iface.tx_interceptor = None

    def _intercept(self, iface):
        def hold(packet: Packet) -> bool:
            if not self._running:
                return False
            self._buffer.append((iface, packet))
            self.packets_buffered += 1
            return True
        return hold

    def _epoch_loop(self, generation: int):
        while self._running and generation == self._generation:
            yield self.sim.timeout(self.epoch_ns)
            if not self._running or generation != self._generation:
                return  # stop() already flushed and detached mid-epoch
            # Commit + release: one save→resume span of the epoch pipeline.
            self.pipeline.reset()
            yield from self.pipeline.run_stages(Stage.SAVE, Stage.RESUME)
            self.epochs += 1

    def _flush(self) -> None:
        buffered, self._buffer = self._buffer, []
        for iface, packet in buffered:
            iface.send_raw(packet)

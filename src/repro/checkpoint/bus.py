"""Publish-subscribe checkpoint notification bus (§4.3).

Emulab's dedicated control network reaches every node with low latency; on
top of it the paper builds a fast notification bus: any node can publish,
all subscribers receive.  Delivery is point-to-point with independent path
delays, so an event-driven "checkpoint now" is received with per-node skew
equal to the control network's delivery jitter — which is exactly why the
paper prefers clock-scheduled checkpoints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.clocksync.ntp import PathDelayModel
from repro.sim.core import Simulator
from repro.sim.random import derived_rng


@dataclass
class BusMessage:
    """One delivered notification."""

    topic: str
    payload: Any
    publisher: str
    published_at: int
    delivered_at: int = 0


class NotificationBus:
    """Control-network publish/subscribe."""

    def __init__(self, sim: Simulator, rng: Optional[random.Random] = None,
                 path: PathDelayModel = PathDelayModel()) -> None:
        self.sim = sim
        self.rng = rng or derived_rng("notification-bus")
        self.path = path
        self._subscribers: Dict[str, List[tuple]] = {}
        self.published = 0
        self.delivered = 0

    def subscribe(self, topic: str, subscriber: str,
                  handler: Callable[[BusMessage], None]) -> None:
        """Receive every future message on ``topic``."""
        self._subscribers.setdefault(topic, []).append((subscriber, handler))

    def unsubscribe(self, topic: str, subscriber: str) -> None:
        """Stop receiving ``topic`` (all handlers for this subscriber)."""
        entries = self._subscribers.get(topic, [])
        self._subscribers[topic] = [e for e in entries if e[0] != subscriber]

    def publish(self, topic: str, payload: Any = None,
                publisher: str = "") -> int:
        """Send ``payload`` to all subscribers of ``topic``.

        Returns the number of deliveries scheduled.  Each delivery takes an
        independent control-network path delay.
        """
        self.published += 1
        published_at = self.sim.now
        scheduled = 0
        for _name, handler in self._subscribers.get(topic, ()):
            delay = self.path.sample_oneway(self.rng)
            message = BusMessage(topic, payload, publisher, published_at)

            def deliver(message=message, handler=handler) -> None:
                message.delivered_at = self.sim.now
                self.delivered += 1
                handler(message)

            self.sim.call_in(delay, deliver)
            scheduled += 1
        return scheduled


class Barrier:
    """Counts arrivals; fires an event when everyone has reported."""

    def __init__(self, sim: Simulator, expected: int) -> None:
        if expected < 0:
            raise ValueError(f"expected must be >= 0, got {expected}")
        self.sim = sim
        self.expected = expected
        self.arrived: List[Any] = []
        self.event = sim.event()
        if expected == 0:
            self.event.succeed([])

    def arrive(self, who: Any = None) -> None:
        """Report one participant done."""
        self.arrived.append(who)
        if len(self.arrived) == self.expected and not self.event.triggered:
            self.event.succeed(list(self.arrived))

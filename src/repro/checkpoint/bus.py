"""Publish-subscribe checkpoint notification bus (§4.3).

Emulab's dedicated control network reaches every node with low latency; on
top of it the paper builds a fast notification bus: any node can publish,
all subscribers receive.  Delivery is point-to-point with independent path
delays, so an event-driven "checkpoint now" is received with per-node skew
equal to the control network's delivery jitter — which is exactly why the
paper prefers clock-scheduled checkpoints.

The paper assumes the control network is reliable.  To survive injected
faults (``repro.faults``) the bus optionally layers a reliable-delivery
protocol on top of the fire-and-forget core: per-message ids, receiver
acks, bounded retransmission with exponential backoff + jitter, and
duplicate suppression in subscribers.  The reliable layer draws all of
its randomness (retransmit delays, ack delays, backoff jitter) from its
own ``derived_rng("bus.reliable")`` substream, so with
``reliability=None`` — the default everywhere — the code path, the event
schedule, and the main rng draw sequence are exactly the legacy ones and
every golden digest stays bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.clocksync.ntp import PathDelayModel
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import Simulator
from repro.sim.random import derived_rng
from repro.obs.trace import Tracer, maybe_record
from repro.units import MS, SECOND


@dataclass
class BusMessage:
    """One delivered notification."""

    topic: str
    payload: Any
    publisher: str
    published_at: int
    delivered_at: int = 0
    #: bus-wide sequence number (reliable mode keys acks/dedup on it)
    msg_id: int = 0


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the reliable-delivery layer (acks + retransmits)."""

    #: how long to wait for an ack before the first retransmit
    ack_timeout_ns: int = 50 * MS
    #: retransmit at most this many times, then give up (dead letter)
    max_retransmits: int = 6
    #: exponential backoff multiplier between retransmits
    backoff_factor: float = 2.0
    #: backoff ceiling
    max_backoff_ns: int = 2 * SECOND
    #: uniform jitter added to each backoff, de-synchronizing retransmits
    jitter_ns: int = 5 * MS


class _Pending:
    """One unacked (message, subscriber) delivery awaiting its ack."""

    __slots__ = ("topic", "payload", "publisher", "published_at", "msg_id",
                 "subscriber", "handler", "attempt", "timer", "span")

    def __init__(self, topic, payload, publisher, published_at, msg_id,
                 subscriber, handler) -> None:
        self.topic = topic
        self.payload = payload
        self.publisher = publisher
        self.published_at = published_at
        self.msg_id = msg_id
        self.subscriber = subscriber
        self.handler = handler
        self.attempt = 0
        self.timer = None
        #: open retransmit-burst span (first retransmit .. ack/give-up)
        self.span = None


class NotificationBus:
    """Control-network publish/subscribe.

    Delivery accounting lives in a :class:`~repro.obs.metrics
    .MetricsRegistry` (one is created if none is shared in); the legacy
    integer attributes (``bus.published``, ``bus.retransmits``, …) are
    read-only views over the registry's counters.
    """

    def __init__(self, sim: Simulator, rng: Optional[random.Random] = None,
                 path: Optional[PathDelayModel] = None,
                 reliability: Optional[ReliabilityConfig] = None,
                 faults=None, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.rng = rng or derived_rng("notification-bus")
        self.path = path if path is not None else PathDelayModel()
        self.reliability = reliability
        self.faults = faults
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._subscribers: Dict[str, List[tuple]] = {}
        # Delivery + fault/reliability accounting (reliability counters
        # all stay zero on the legacy path).
        m = self.metrics
        self._c_published = m.counter("bus.published")
        self._c_delivered = m.counter("bus.delivered")
        self._c_dropped = m.counter("bus.dropped")
        self._c_retransmits = m.counter("bus.retransmits")
        self._c_duplicates = m.counter("bus.duplicates_suppressed")
        self._c_acks_sent = m.counter("bus.acks_sent")
        self._c_acks_lost = m.counter("bus.acks_lost")
        self._c_gave_up = m.counter("bus.gave_up")
        self._c_undeliverable = m.counter("bus.undeliverable")
        #: retransmits-per-burst distribution, observed at burst end
        self._h_burst = m.histogram("bus.retransmit_burst", buckets=(1, 2, 4, 8))
        #: (topic, subscriber, msg_id) of deliveries the bus gave up on
        self.dead_letters: List[Tuple[str, str, int]] = []
        #: subscribers with at least one exhausted delivery (dead until
        #: they ack again) — the coordinator's dead-agent signal
        self.suspects: Dict[str, int] = {}
        self._next_msg_id = 1
        self._pending: Dict[Tuple[int, str], _Pending] = {}
        self._seen: Dict[str, Set[int]] = {}
        self._rel_rng: Optional[random.Random] = None

    # -- legacy counter views over the metrics registry ------------------------

    @property
    def published(self) -> int:
        return self._c_published.value

    @property
    def delivered(self) -> int:
        return self._c_delivered.value

    @property
    def dropped(self) -> int:
        return self._c_dropped.value

    @property
    def retransmits(self) -> int:
        return self._c_retransmits.value

    @property
    def duplicates_suppressed(self) -> int:
        return self._c_duplicates.value

    @property
    def acks_sent(self) -> int:
        return self._c_acks_sent.value

    @property
    def acks_lost(self) -> int:
        return self._c_acks_lost.value

    @property
    def gave_up(self) -> int:
        return self._c_gave_up.value

    @property
    def undeliverable(self) -> int:
        return self._c_undeliverable.value

    def subscribe(self, topic: str, subscriber: str,
                  handler: Callable[[BusMessage], None]) -> None:
        """Receive every future message on ``topic``."""
        self._subscribers.setdefault(topic, []).append((subscriber, handler))

    def unsubscribe(self, topic: str, subscriber: str) -> None:
        """Stop receiving ``topic`` (all handlers for this subscriber)."""
        entries = self._subscribers.get(topic, [])
        self._subscribers[topic] = [e for e in entries if e[0] != subscriber]

    def _is_subscribed(self, topic: str, subscriber: str) -> bool:
        return any(e[0] == subscriber
                   for e in self._subscribers.get(topic, ()))

    def _reliable_rng(self) -> random.Random:
        if self._rel_rng is None:
            self._rel_rng = derived_rng("bus.reliable")
        return self._rel_rng

    def publish(self, topic: str, payload: Any = None,
                publisher: str = "") -> int:
        """Send ``payload`` to all subscribers of ``topic``.

        Returns the number of deliveries scheduled.  Each delivery takes
        an independent control-network path delay.  The per-subscriber
        delay is always drawn from the main rng *before* any fault
        verdict, so an attached-but-idle injector consumes exactly the
        same draws as no injector at all.
        """
        self._c_published.inc()
        published_at = self.sim.now
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        scheduled = 0
        for name, handler in self._subscribers.get(topic, ()):
            delay = self.path.sample_oneway(self.rng)
            entry = None
            if self.reliability is not None:
                entry = _Pending(topic, payload, publisher, published_at,
                                 msg_id, name, handler)
                self._pending[(msg_id, name)] = entry
                self._arm_retransmit(entry)
            self._attempt_delivery(topic, payload, publisher, published_at,
                                   msg_id, name, handler, delay, attempt=0)
            scheduled += 1
        return scheduled

    # -- delivery (shared by first attempts and retransmits) -------------------

    def _attempt_delivery(self, topic, payload, publisher, published_at,
                          msg_id, subscriber, handler, delay,
                          attempt) -> None:
        verdict = None
        if self.faults is not None:
            verdict = self.faults.bus_delivery(topic, subscriber, attempt)
        if verdict is not None and verdict.drop:
            self._c_dropped.inc()
            return
        extra = verdict.extra_delay_ns if verdict is not None else 0
        message = BusMessage(topic, payload, publisher, published_at,
                             msg_id=msg_id)

        def deliver(message=message, handler=handler) -> None:
            self._deliver(message, subscriber, handler)

        self.sim.call_in(delay + extra, deliver)
        if verdict is not None and verdict.duplicate:
            copy = BusMessage(topic, payload, publisher, published_at,
                              msg_id=msg_id)

            def deliver_copy(message=copy, handler=handler) -> None:
                self._deliver(message, subscriber, handler)

            gap = self.faults.plan.bus.duplicate_gap_ns
            self.sim.call_in(delay + extra + gap, deliver_copy)

    def _deliver(self, message: BusMessage, subscriber: str,
                 handler) -> None:
        if self.reliability is not None:
            # A crashed (unsubscribed) agent no longer receives — and
            # therefore never acks, which is what drives the publisher's
            # retransmit/give-up machinery and the suspect list.
            if not self._is_subscribed(message.topic, subscriber):
                self._c_undeliverable.inc()
                return
            self._send_ack(message, subscriber)
            seen = self._seen.setdefault(subscriber, set())
            if message.msg_id in seen:
                self._c_duplicates.inc()
                maybe_record(self.tracer, "bus.duplicate_suppressed",
                             topic=message.topic, subscriber=subscriber,
                             msg_id=message.msg_id)
                return
            seen.add(message.msg_id)
        message.delivered_at = self.sim.now
        self._c_delivered.inc()
        handler(message)

    # -- reliable layer --------------------------------------------------------

    def _send_ack(self, message: BusMessage, subscriber: str) -> None:
        """Ack travels back over the control network (its own delay)."""
        if self.faults is not None and self.faults.bus_ack_lost(
                message.topic, subscriber):
            self._c_acks_lost.inc()
            return
        self._c_acks_sent.inc()
        delay = self.path.sample_oneway(self._reliable_rng())
        key = (message.msg_id, subscriber)
        self.sim.call_in(delay, lambda: self._on_ack(key))

    def _on_ack(self, key: Tuple[int, str]) -> None:
        entry = self._pending.pop(key, None)
        if entry is None:
            return      # already acked (duplicate ack) or given up
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        if entry.attempt > 0:
            self._h_burst.observe(entry.attempt)
        if entry.span is not None:
            entry.span.end(outcome="acked", attempts=entry.attempt)
            entry.span = None
        # An ack is proof of life: clear any earlier suspicion.
        self.suspects.pop(entry.subscriber, None)

    def _arm_retransmit(self, entry: _Pending) -> None:
        cfg = self.reliability
        timeout = int(cfg.ack_timeout_ns *
                      (cfg.backoff_factor ** entry.attempt))
        if timeout > cfg.max_backoff_ns:
            timeout = cfg.max_backoff_ns
        if cfg.jitter_ns:
            timeout += int(self._reliable_rng().random() * cfg.jitter_ns)
        key = (entry.msg_id, entry.subscriber)
        entry.timer = self.sim.call_in(timeout, lambda: self._expire(key))

    def _expire(self, key: Tuple[int, str]) -> None:
        entry = self._pending.get(key)
        if entry is None:
            return
        entry.timer = None
        cfg = self.reliability
        if entry.attempt >= cfg.max_retransmits:
            del self._pending[key]
            self._c_gave_up.inc()
            self.dead_letters.append((entry.topic, entry.subscriber,
                                      entry.msg_id))
            self.suspects[entry.subscriber] = (
                self.suspects.get(entry.subscriber, 0) + 1)
            self._h_burst.observe(entry.attempt)
            if entry.span is not None:
                entry.span.end(outcome="dead", attempts=entry.attempt)
                entry.span = None
            maybe_record(self.tracer, "bus.gave_up", topic=entry.topic,
                         subscriber=entry.subscriber, msg_id=entry.msg_id,
                         attempts=entry.attempt + 1)
            return
        entry.attempt += 1
        self._c_retransmits.inc()
        tracer = self.tracer
        if (entry.span is None and tracer is not None
                and tracer.enabled_for("bus.retransmit.burst")):
            # First retransmit opens the burst episode; overlapping bursts
            # toward different subscribers render side by side.
            entry.span = tracer.async_span(
                "bus.retransmit.burst", track=f"bus/{entry.subscriber}",
                name=entry.topic, topic=entry.topic,
                subscriber=entry.subscriber, msg_id=entry.msg_id)
        maybe_record(self.tracer, "bus.retransmit", topic=entry.topic,
                     subscriber=entry.subscriber, msg_id=entry.msg_id,
                     attempt=entry.attempt)
        delay = self.path.sample_oneway(self._reliable_rng())
        self._attempt_delivery(entry.topic, entry.payload, entry.publisher,
                               entry.published_at, entry.msg_id,
                               entry.subscriber, entry.handler, delay,
                               attempt=entry.attempt)
        self._arm_retransmit(entry)


class Barrier:
    """Counts arrivals; fires an event when everyone has reported.

    Arrivals after the barrier has fired (or been aborted through its
    event) are recorded in :attr:`late` and traced — never silently
    dropped and never able to double-fire the event.  Re-arrivals of a
    participant already counted land in :attr:`duplicates` instead of
    inflating the count (retransmitted or injector-duplicated acks).
    """

    def __init__(self, sim: Simulator, expected: int, name: str = "",
                 tracer: Optional[Tracer] = None) -> None:
        if expected < 0:
            raise ValueError(f"expected must be >= 0, got {expected}")
        self.sim = sim
        self.expected = expected
        self.name = name
        self.tracer = tracer
        self.arrived: List[Any] = []
        self.late: List[Any] = []
        self.duplicates: List[Any] = []
        self.event = sim.event()
        if expected == 0:
            self.event.succeed([])

    def arrive(self, who: Any = None) -> None:
        """Report one participant done."""
        if self.event.triggered:
            self.late.append(who)
            maybe_record(self.tracer, "barrier.late", barrier=self.name,
                         who=who, at_ns=self.sim.now)
            return
        if who is not None and who in self.arrived:
            self.duplicates.append(who)
            maybe_record(self.tracer, "barrier.duplicate",
                         barrier=self.name, who=who, at_ns=self.sim.now)
            return
        self.arrived.append(who)
        if len(self.arrived) == self.expected:
            self.event.succeed(list(self.arrived))

"""Crash-safe on-disk snapshots: journaled commits, fsck, crash points.

:class:`~repro.checkpoint.snapshot.SnapshotStore` made snapshots
*correct* (content-addressed chunks, strict manifests, two-phase
restore) but kept them in memory — and its single-file ``save()`` could
tear if the writer died mid-write.  This module makes them *durable*:
:class:`DurableSnapshotStore` persists every snapshot through a
journal/commit-marker protocol under which a crash at **any**
instruction leaves the store recoverable to exactly the previous or the
new committed snapshot — never anything in between.

On-disk layout (all under one root directory)::

    root/
      chunks/<sha256>.chunk     content-addressed payload chunks
      manifests/<sid>.json      committed manifests (atomic rename)
      journal/<sid>.intent      commit intent, present only mid-save

Commit protocol for one snapshot (write-temp → fsync → atomic rename at
every step; the directories are fsynced after each rename barrier):

1. write + fsync ``journal/<sid>.intent.tmp``, rename to ``.intent``
   — the *intent marker*: recovery now knows a save was in flight;
2. write + fsync + rename each chunk file the snapshot adds (chunks
   shared with committed snapshots are already on disk — the delta
   property survives the disk);
3. write + fsync ``manifests/<sid>.json.tmp``, then ``os.replace`` to
   ``manifests/<sid>.json`` — **the commit point**: the snapshot exists
   exactly when this rename is durable;
4. unlink the intent marker (cleanup; recovery finishes it if we die
   first).

Every barrier registers a named **crash point** (:data:`CRASH_POINTS`).
A :class:`~repro.faults.plan.ProcessCrash` fault raises
:class:`~repro.errors.SimulatedCrash` at a chosen point, and the crash
matrix (``repro snapshot crashmatrix``, ``tests/test_snapshot_durable``)
proves atomicity by exhaustive enumeration: for every point, recovery
lands on the prior or the new committed snapshot, digest-verified.

:meth:`DurableSnapshotStore.recover` (and its read-only twin
:meth:`fsck <DurableSnapshotStore.fsck>`) classifies every on-disk
state — clean, torn temp files, stale intents (completed vs rolled
back), orphan chunks, corrupt manifests, manifests with missing or
corrupt chunks — and either repairs it or degrades safely: a snapshot
whose delta chain is broken is *damaged*, not fatal; navigation falls
back to :meth:`nearest_intact` plus deterministic replay.

Transient I/O errors (``ENOSPC``, ``EIO`` — injected via
:class:`~repro.faults.plan.DiskFault` with ``store="durable"``) are
retried with the supervisor's bounded
:class:`~repro.checkpoint.supervisor.RetryThenAbort` decision shape and
traced as ``snapshot.retry`` records; exhaustion aborts the save with
the store still at its last committed snapshot.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.checkpoint.snapshot import (SnapshotManifest, SnapshotStore,
                                       canonical_bytes, payload_digest)
from repro.checkpoint.supervisor import RetryThenAbort
from repro.errors import SnapshotError, StorageError
from repro.obs.trace import Tracer, maybe_record

#: on-disk container format of manifest documents and intent records
DURABLE_FORMAT = 1

#: crash points of the save path, in barrier order.  "save.begin" fires
#: before anything is written; "save.manifest.committed" is the first
#: point at which the new snapshot is durable.
SAVE_CRASH_POINTS = (
    "save.begin",
    "save.intent.prepared",
    "save.intent.committed",
    "save.chunk.first",
    "save.chunks.synced",
    "save.manifest.prepared",
    "save.manifest.committed",
    "save.journal.cleared",
)

#: crash points of the recovery path (repairs must themselves be
#: crash-safe: recovery after a crashed recovery converges)
RECOVER_CRASH_POINTS = (
    "recover.journal.rollback",
    "recover.journal.clear",
    "recover.orphan.sweep",
)

#: every registered durability barrier, in path order
CRASH_POINTS = SAVE_CRASH_POINTS + RECOVER_CRASH_POINTS

#: errno values treated as transient (retried) by the durable write path
TRANSIENT_ERRNOS = (errno.ENOSPC, errno.EIO, errno.EAGAIN, errno.EINTR)

_CHUNK_SUFFIX = ".chunk"
_MANIFEST_SUFFIX = ".json"
_INTENT_SUFFIX = ".intent"
_TMP_SUFFIX = ".tmp"
_QUARANTINE_SUFFIX = ".quarantined"


@dataclass
class FsckReport:
    """What one :meth:`DurableSnapshotStore.recover`/``fsck`` pass found.

    ``committed`` is the usable snapshot chain (commit order);
    ``completed`` are snapshots whose commit landed but whose intent
    marker was still present (the crash hit between steps 3 and 4 —
    recovery finished the cleanup); ``rolled_back`` are saves that died
    before their commit point (intent present, no manifest — recovery
    discarded their partial state); ``damaged`` are committed manifests
    whose chunks are missing or corrupt (kept on disk, excluded from the
    usable chain, served via :meth:`~DurableSnapshotStore.nearest_intact`
    + replay); ``quarantined`` are manifest files that failed parsing or
    self-digest validation (renamed aside, never deleted).
    """

    committed: List[str] = field(default_factory=list)
    completed: List[str] = field(default_factory=list)
    rolled_back: List[str] = field(default_factory=list)
    damaged: List[Tuple[str, str]] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    torn_files_removed: int = 0
    orphan_chunks_removed: int = 0
    repaired: bool = False

    @property
    def clean(self) -> bool:
        """True when the store needed no repair and nothing degraded."""
        return not (self.completed or self.rolled_back or self.damaged
                    or self.quarantined or self.torn_files_removed
                    or self.orphan_chunks_removed)

    def to_dict(self) -> dict:
        return {"committed": list(self.committed),
                "completed": list(self.completed),
                "rolled_back": list(self.rolled_back),
                "damaged": [list(pair) for pair in self.damaged],
                "quarantined": list(self.quarantined),
                "torn_files_removed": self.torn_files_removed,
                "orphan_chunks_removed": self.orphan_chunks_removed,
                "repaired": self.repaired,
                "clean": self.clean}


class DurableSnapshotStore(SnapshotStore):
    """A :class:`SnapshotStore` whose snapshots survive process death.

    The in-memory structures inherited from the base class act as a
    cache of the committed on-disk state; :meth:`take` commits each new
    snapshot durably before returning, and :meth:`recover` rebuilds the
    cache from disk (repairing what a crash left behind).  Single
    writer: the store assumes one process mutates ``root`` at a time.

    ``fsync=False`` keeps the full barrier *ordering* (temp files,
    atomic renames, crash points) but skips the physical ``fsync``
    calls — the mode CI uses for speed; crash-matrix coverage is
    unchanged because the simulated crash model is process death, not
    power loss.
    """

    def __init__(self, root: str, *, fsync: bool = True,
                 tracer: Optional[Tracer] = None,
                 retry_policy: Optional[RetryThenAbort] = None) -> None:
        super().__init__()
        self.root = os.path.abspath(root)
        self.fsync_enabled = fsync
        self.tracer = tracer
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryThenAbort()
        #: set by :meth:`FaultInjector.register_durable_store`; called
        #: with each crash-point name as the save/recover path passes it
        self.crash_hook: Optional[Callable[[str], None]] = None
        #: optional FaultInjector for DiskFault routing (store="durable")
        self.faults = None
        self._chunk_dir = os.path.join(self.root, "chunks")
        self._manifest_dir = os.path.join(self.root, "manifests")
        self._journal_dir = os.path.join(self.root, "journal")
        for path in (self._chunk_dir, self._manifest_dir,
                     self._journal_dir):
            os.makedirs(path, exist_ok=True)
        #: chunk refs currently present as committed chunk files
        self._disk_refs: Set[str] = set()
        #: monotonic commit sequence (recovered as max committed seq)
        self._seq = 0
        #: snapshot_id -> reason, for committed-but-unusable manifests
        self._damaged: Dict[str, str] = {}
        #: snapshot_id -> parent, covering damaged manifests too (the
        #: delta-chain walk of :meth:`nearest_intact` needs their links)
        self._parents: Dict[str, Optional[str]] = {}
        #: manifests of damaged snapshots (metadata survives even when
        #: the chunk data did not — resume grafts them so navigation can
        #: degrade to the nearest intact ancestor + replay)
        self.damaged_manifests: Dict[str, SnapshotManifest] = {}
        #: every committed sid (intact and damaged) in commit-seq order
        self._resume_order: List[str] = []
        self._commit_durable = False

    # ------------------------------------------------------------------ barriers

    def _crash_point(self, point: str) -> None:
        if point not in CRASH_POINTS:
            raise SnapshotError(f"unregistered crash point {point!r}")
        hook = self.crash_hook
        if hook is not None:
            hook(point)

    def _fsync_dir(self, path: str) -> None:
        if not self.fsync_enabled:
            return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _write_file(self, path: str, blob: bytes, what: str) -> None:
        """One durable file write, with bounded retry-then-abort.

        Transient failures — injected :class:`DiskFault`\\ s routed
        through the attached injector, or real ``OSError``\\ s with a
        transient errno — consult the supervisor-shaped retry policy
        and emit a ``snapshot.retry`` trace record per decision.  The
        store is host-side (no simulated clock), so the policy's
        backoff is recorded as metadata but never slept on.
        """
        attempt = 0
        while True:
            try:
                if self.faults is not None:
                    self.faults.disk_check("durable", "write")
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC,
                             0o666)
                try:
                    os.write(fd, blob)
                    if self.fsync_enabled:
                        os.fsync(fd)
                finally:
                    os.close(fd)
                return
            except (StorageError, OSError) as exc:
                if isinstance(exc, OSError) \
                        and exc.errno not in TRANSIENT_ERRNOS:
                    raise
                decision = self.retry_policy.decide(None, attempt, None)
                maybe_record(self.tracer, "snapshot.retry", what=what,
                             path=os.path.basename(path), attempt=attempt,
                             retry=decision.retry,
                             backoff_ns=decision.backoff_ns,
                             error=str(exc))
                if not decision.retry:
                    raise SnapshotError(
                        f"durable write of {what} "
                        f"({os.path.basename(path)}) failed after "
                        f"{attempt + 1} attempts: {exc}") from exc
                attempt += 1

    # ------------------------------------------------------------------ take

    def take(self, snapshot_id: str, providers, virtual_time_ns: int,
             parent: Optional[str] = None,
             label: str = "") -> SnapshotManifest:
        """Serialize the providers and commit the snapshot durably.

        The in-memory registration is unwound if the commit dies before
        its commit point, so a caught abort (retry exhaustion) leaves
        the cache at the last committed snapshot; chunks already added
        to the in-memory chunk store stay behind as a harmless dedup
        cache and are garbage-collected on the next :meth:`recover`.
        """
        if snapshot_id in self._damaged:
            raise SnapshotError(
                f"snapshot {snapshot_id!r} exists on disk (damaged)")
        manifest = super().take(snapshot_id, providers, virtual_time_ns,
                                parent=parent, label=label)
        self._commit_durable = False
        try:
            self._commit(manifest)
        finally:
            if not self._commit_durable:
                del self.manifests[snapshot_id]
                self.order.remove(snapshot_id)
            else:
                self._parents[snapshot_id] = manifest.parent
                self._resume_order.append(snapshot_id)
        return manifest

    def _commit(self, manifest: SnapshotManifest) -> None:
        sid = manifest.snapshot_id
        self._crash_point("save.begin")
        self._seq += 1
        new_refs: List[str] = []
        seen: Set[str] = set()
        for rec in manifest.providers:
            for ref in rec.chunks:
                if ref not in seen and ref not in self._disk_refs:
                    seen.add(ref)
                    new_refs.append(ref)

        intent = {"format": DURABLE_FORMAT, "snapshot_id": sid,
                  "seq": self._seq, "new_chunks": new_refs}
        intent_path = os.path.join(self._journal_dir, sid + _INTENT_SUFFIX)
        blob = json.dumps(intent, sort_keys=True).encode("utf-8")
        self._write_file(intent_path + _TMP_SUFFIX, blob, "journal intent")
        self._crash_point("save.intent.prepared")
        os.replace(intent_path + _TMP_SUFFIX, intent_path)
        self._fsync_dir(self._journal_dir)
        self._crash_point("save.intent.committed")

        first = True
        for ref in new_refs:
            chunk_path = os.path.join(self._chunk_dir, ref + _CHUNK_SUFFIX)
            self._write_file(chunk_path + _TMP_SUFFIX,
                             self.chunks.get((ref,)), "chunk")
            os.replace(chunk_path + _TMP_SUFFIX, chunk_path)
            self._disk_refs.add(ref)
            if first:
                self._crash_point("save.chunk.first")
                first = False
        self._fsync_dir(self._chunk_dir)
        self._crash_point("save.chunks.synced")

        manifest_dict = manifest.to_dict()
        doc = {"durable_format": DURABLE_FORMAT, "seq": self._seq,
               "manifest": manifest_dict,
               "self_digest": payload_digest(canonical_bytes(manifest_dict))}
        manifest_path = os.path.join(self._manifest_dir,
                                     sid + _MANIFEST_SUFFIX)
        self._write_file(manifest_path + _TMP_SUFFIX,
                         json.dumps(doc, sort_keys=True,
                                    indent=1).encode("utf-8"), "manifest")
        self._crash_point("save.manifest.prepared")
        os.replace(manifest_path + _TMP_SUFFIX, manifest_path)
        self._fsync_dir(self._manifest_dir)
        self._commit_durable = True      # the rename above IS the commit
        self._crash_point("save.manifest.committed")

        os.unlink(intent_path)
        self._fsync_dir(self._journal_dir)
        self._crash_point("save.journal.cleared")
        maybe_record(self.tracer, "snapshot.durable.commit",
                     snapshot_id=sid, seq=self._seq,
                     new_chunks=len(new_refs),
                     total_bytes=manifest.total_bytes)

    # ------------------------------------------------------------------ damage

    def is_damaged(self, snapshot_id: str) -> bool:
        """Whether a committed snapshot is unusable (broken delta chain)."""
        return snapshot_id in self._damaged

    def nearest_intact(self, snapshot_id: str) -> Optional[str]:
        """The deepest intact snapshot at or above ``snapshot_id``.

        Walks the recorded parent links (damaged manifests keep theirs)
        until it finds a snapshot whose chunks all verified; ``None``
        when the whole ancestry is broken — the caller then degrades to
        deterministic replay from the origin.
        """
        current: Optional[str] = snapshot_id
        walked: Set[str] = set()
        while current is not None and current not in walked:
            walked.add(current)
            if current in self.manifests:
                return current
            current = self._parents.get(current)
        return None

    def resume_manifests(self) -> List[SnapshotManifest]:
        """Every committed manifest in commit order, damaged included.

        A resuming :class:`~repro.timetravel.controller.TimeTravelController`
        grafts all of them into its checkpoint tree: intact ones become
        restore targets, damaged ones keep their place in the history so
        navigation degrades to the nearest intact ancestor plus forward
        replay instead of forgetting the checkpoint ever existed.
        """
        return [self.manifests.get(sid) or self.damaged_manifests[sid]
                for sid in self._resume_order]

    def restore(self, snapshot_id: str, providers) -> SnapshotManifest:
        if snapshot_id in self._damaged:
            fallback = self.nearest_intact(snapshot_id)
            raise SnapshotError(
                f"snapshot {snapshot_id!r} is damaged "
                f"({self._damaged[snapshot_id]}); nearest intact "
                f"ancestor: {fallback!r}")
        return super().restore(snapshot_id, providers)

    # ------------------------------------------------------------------ recovery

    def recover(self) -> FsckReport:
        """Rebuild the cache from disk, repairing crash leftovers.

        Idempotent and itself crash-safe: every repair action is a
        single unlink/rename behind its own crash point, so a recovery
        killed mid-repair converges on the next attempt.
        """
        return self._scan(repair=True)

    def fsck(self) -> FsckReport:
        """Classify the on-disk state without modifying anything.

        Loads intact snapshots into the in-memory cache (that is a pure
        cache rebuild) but performs no unlinks, renames, or journal
        cleanup — the counts report what :meth:`recover` *would* do.
        """
        return self._scan(repair=False)

    def _scan(self, repair: bool) -> FsckReport:
        report = FsckReport(repaired=repair)
        self.chunks = type(self.chunks)()
        self.manifests = {}
        self.order = []
        self._disk_refs = set()
        self._damaged = {}
        self._parents = {}
        self.damaged_manifests = {}
        self._resume_order = []

        candidates = self._scan_manifests(report, repair)
        present = self._scan_chunks(report, repair)
        self._scan_journal(report, repair, candidates)
        self._verify_and_load(report, candidates, present)
        self._sweep_orphans(report, repair, candidates, present)
        self._seq = max([seq for seq, _ in candidates.values()],
                        default=0)
        maybe_record(self.tracer, "snapshot.durable.recover",
                     repair=repair, **{k: v for k, v in
                                       report.to_dict().items()
                                       if isinstance(v, (int, bool))})
        return report

    def _remove_torn(self, path: str, report: FsckReport,
                     repair: bool) -> None:
        report.torn_files_removed += 1
        if repair:
            os.unlink(path)

    def _scan_manifests(self, report: FsckReport, repair: bool
                        ) -> Dict[str, Tuple[int, SnapshotManifest]]:
        """Parse every manifest file; quarantine what fails validation."""
        candidates: Dict[str, Tuple[int, SnapshotManifest]] = {}
        for name in sorted(os.listdir(self._manifest_dir)):
            path = os.path.join(self._manifest_dir, name)
            if name.endswith(_TMP_SUFFIX):
                self._remove_torn(path, report, repair)
                continue
            if not name.endswith(_MANIFEST_SUFFIX):
                continue
            sid = name[:-len(_MANIFEST_SUFFIX)]
            try:
                candidates[sid] = self._load_manifest_doc(path, sid)
            except SnapshotError as exc:
                report.quarantined.append(sid)
                maybe_record(self.tracer, "snapshot.durable.quarantine",
                             snapshot_id=sid, error=str(exc))
                if repair:
                    os.replace(path, path + _QUARANTINE_SUFFIX)
        return candidates

    def _load_manifest_doc(self, path: str,
                           sid: str) -> Tuple[int, SnapshotManifest]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"unreadable manifest: {exc}") from exc
        if not isinstance(doc, dict) or set(doc) != {
                "durable_format", "seq", "manifest", "self_digest"}:
            raise SnapshotError("malformed manifest document")
        if doc["durable_format"] != DURABLE_FORMAT:
            raise SnapshotError(
                f"durable format {doc['durable_format']!r} unsupported")
        recorded = payload_digest(canonical_bytes(doc["manifest"]))
        if recorded != doc["self_digest"]:
            raise SnapshotError("manifest self-digest mismatch (torn or "
                                "corrupted on disk)")
        manifest = SnapshotManifest.from_dict(doc["manifest"])
        if manifest.snapshot_id != sid:
            raise SnapshotError(
                f"manifest names {manifest.snapshot_id!r}, file names "
                f"{sid!r}")
        return int(doc["seq"]), manifest

    def _scan_chunks(self, report: FsckReport, repair: bool) -> Set[str]:
        present: Set[str] = set()
        for name in sorted(os.listdir(self._chunk_dir)):
            path = os.path.join(self._chunk_dir, name)
            if name.endswith(_TMP_SUFFIX):
                self._remove_torn(path, report, repair)
                continue
            if name.endswith(_CHUNK_SUFFIX):
                present.add(name[:-len(_CHUNK_SUFFIX)])
        return present

    def _scan_journal(self, report: FsckReport, repair: bool,
                      candidates: Dict[str, Tuple[int, SnapshotManifest]]
                      ) -> None:
        """Resolve stale intents: finish committed saves, roll back dead
        ones.  The intent's chunk list is informational — the orphan
        sweep is the authoritative collector — so rollback here is a
        single unlink of the marker."""
        for name in sorted(os.listdir(self._journal_dir)):
            path = os.path.join(self._journal_dir, name)
            if name.endswith(_TMP_SUFFIX):
                self._remove_torn(path, report, repair)
                continue
            if not name.endswith(_INTENT_SUFFIX):
                continue
            sid = name[:-len(_INTENT_SUFFIX)]
            if sid in candidates:
                # crash hit between the commit point and the cleanup
                report.completed.append(sid)
                if repair:
                    self._crash_point("recover.journal.clear")
                    os.unlink(path)
            else:
                # the save never reached its commit point
                report.rolled_back.append(sid)
                if repair:
                    self._crash_point("recover.journal.rollback")
                    os.unlink(path)
        if repair and (report.completed or report.rolled_back
                       or report.torn_files_removed):
            self._fsync_dir(self._journal_dir)

    def _verify_and_load(self, report: FsckReport,
                         candidates: Dict[str, Tuple[int, SnapshotManifest]],
                         present: Set[str]) -> None:
        """Chunk-verify every candidate; load intact ones into memory."""
        loaded: Dict[str, bytes] = {}
        for sid in sorted(candidates,
                          key=lambda s: (candidates[s][0], s)):
            _seq, manifest = candidates[sid]
            self._parents[sid] = manifest.parent
            why = None
            blobs: Dict[str, bytes] = {}
            for rec in manifest.providers:
                for ref in rec.chunks:
                    if ref in loaded or ref in blobs:
                        continue
                    if ref not in present:
                        why = f"missing chunk {ref[:12]}…"
                        break
                    path = os.path.join(self._chunk_dir,
                                        ref + _CHUNK_SUFFIX)
                    with open(path, "rb") as fh:
                        blob = fh.read()
                    if hashlib.sha256(blob).hexdigest() != ref:
                        why = f"corrupt chunk {ref[:12]}…"
                        break
                    blobs[ref] = blob
                if why is not None:
                    break
            self._resume_order.append(sid)
            if why is not None:
                self._damaged[sid] = why
                self.damaged_manifests[sid] = manifest
                report.damaged.append((sid, why))
                maybe_record(self.tracer, "snapshot.durable.damaged",
                             snapshot_id=sid, reason=why)
                continue
            for ref, blob in blobs.items():
                self.chunks._chunks[ref] = blob
                self.chunks.chunks_stored += 1
                self.chunks.bytes_stored += len(blob)
                self._disk_refs.add(ref)
                loaded[ref] = blob
            for ref in (r for rec in manifest.providers
                        for r in rec.chunks):
                self._disk_refs.add(ref)
            self.manifests[sid] = manifest
            self.order.append(sid)
            report.committed.append(sid)

    def _sweep_orphans(self, report: FsckReport, repair: bool,
                       candidates: Dict[str, Tuple[int, SnapshotManifest]],
                       present: Set[str]) -> None:
        """Delete chunk files no manifest (intact *or* damaged) references.

        Damaged manifests keep their surviving chunks: a descendant or a
        future repair may still need them, and degrading must never
        destroy evidence."""
        referenced: Set[str] = set()
        for _seq, manifest in candidates.values():
            for rec in manifest.providers:
                referenced.update(rec.chunks)
        swept = False
        for ref in sorted(present - referenced):
            report.orphan_chunks_removed += 1
            if repair:
                if not swept:
                    self._crash_point("recover.orphan.sweep")
                    swept = True
                os.unlink(os.path.join(self._chunk_dir,
                                       ref + _CHUNK_SUFFIX))

    # ------------------------------------------------------------------ stats

    def durability_stats(self) -> dict:
        """Disk-side counters (the delta property, measured in files)."""
        return {"root": self.root,
                "committed": len(self.order),
                "damaged": len(self._damaged),
                "chunk_files": len(self._disk_refs),
                "fsync": self.fsync_enabled,
                "seq": self._seq}

"""Distributed transparent checkpointing — the paper's core contribution."""

from repro.checkpoint.bus import (Barrier, BusMessage, NotificationBus,
                                  ReliabilityConfig)
from repro.checkpoint.pipeline import (AgentFailure, BoundedSkewRetrySuspend,
                                       BranchProvider, Checkpointable,
                                       CheckpointFailure, CheckpointPipeline,
                                       ClockHandoff, ClockProvider,
                                       DeadlineSuspend, DelayNodeProvider,
                                       DomainProvider, ImmediateSuspend,
                                       NaiveDomainProvider, SnapshotCapture,
                                       Stage, StageFailed, StageTiming,
                                       SuspendPolicy, capture_run_snapshot)
from repro.checkpoint.coordinator import (CoordinatedResult, Coordinator,
                                          DelayNodeAgent, NodeAgent)
from repro.checkpoint.supervisor import (CheckpointSupervisor,
                                         DegradationPolicy, FailFast,
                                         ProceedWithoutDelayNodes,
                                         RetryDecision, RetryThenAbort)
from repro.checkpoint.baselines import (NaiveCheckpointer, RemusCheckpointer,
                                        UncoordinatedRunner)
from repro.checkpoint.durable import (CRASH_POINTS, DurableSnapshotStore,
                                      FsckReport, SAVE_CRASH_POINTS)

__all__ = [
    "AgentFailure", "Barrier", "BoundedSkewRetrySuspend", "BranchProvider",
    "BusMessage", "CRASH_POINTS", "Checkpointable", "CheckpointFailure",
    "CheckpointPipeline", "CheckpointSupervisor", "ClockHandoff",
    "ClockProvider", "CoordinatedResult", "Coordinator", "DeadlineSuspend",
    "DegradationPolicy", "DelayNodeAgent", "DelayNodeProvider",
    "DomainProvider", "DurableSnapshotStore", "FailFast", "FsckReport",
    "ImmediateSuspend", "NaiveCheckpointer", "NaiveDomainProvider",
    "NodeAgent", "NotificationBus", "ProceedWithoutDelayNodes",
    "ReliabilityConfig", "RemusCheckpointer", "RetryDecision",
    "RetryThenAbort", "SAVE_CRASH_POINTS", "SnapshotCapture", "Stage",
    "StageFailed", "StageTiming", "SuspendPolicy", "UncoordinatedRunner",
    "capture_run_snapshot",
]

"""Distributed transparent checkpointing — the paper's core contribution."""

from repro.checkpoint.bus import Barrier, BusMessage, NotificationBus
from repro.checkpoint.pipeline import (AgentFailure, BoundedSkewRetrySuspend,
                                       BranchProvider, Checkpointable,
                                       CheckpointFailure, CheckpointPipeline,
                                       ClockHandoff, ClockProvider,
                                       DeadlineSuspend, DelayNodeProvider,
                                       DomainProvider, ImmediateSuspend,
                                       NaiveDomainProvider, SnapshotCapture,
                                       Stage, StageFailed, StageTiming,
                                       SuspendPolicy, capture_run_snapshot)
from repro.checkpoint.coordinator import (CoordinatedResult, Coordinator,
                                          DelayNodeAgent, NodeAgent)
from repro.checkpoint.baselines import (NaiveCheckpointer, RemusCheckpointer,
                                        UncoordinatedRunner)

__all__ = [
    "AgentFailure", "Barrier", "BoundedSkewRetrySuspend", "BranchProvider",
    "BusMessage", "Checkpointable", "CheckpointFailure", "CheckpointPipeline",
    "ClockHandoff", "ClockProvider", "CoordinatedResult", "Coordinator",
    "DeadlineSuspend", "DelayNodeAgent", "DelayNodeProvider", "DomainProvider",
    "ImmediateSuspend", "NaiveCheckpointer", "NaiveDomainProvider",
    "NodeAgent", "NotificationBus", "RemusCheckpointer", "SnapshotCapture",
    "Stage", "StageFailed", "StageTiming", "SuspendPolicy",
    "UncoordinatedRunner", "capture_run_snapshot",
]

"""Distributed transparent checkpointing — the paper's core contribution."""

from repro.checkpoint.bus import Barrier, BusMessage, NotificationBus
from repro.checkpoint.coordinator import (CoordinatedResult, Coordinator,
                                          DelayNodeAgent, NodeAgent)
from repro.checkpoint.baselines import (NaiveCheckpointer, RemusCheckpointer,
                                        UncoordinatedRunner)

__all__ = [
    "Barrier", "BusMessage", "NotificationBus", "CoordinatedResult",
    "Coordinator", "DelayNodeAgent", "NodeAgent", "NaiveCheckpointer",
    "RemusCheckpointer", "UncoordinatedRunner",
]

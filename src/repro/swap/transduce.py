"""Timestamp transduction for the external world (§5.2).

Time inside a statefully-swapped experiment lags real time by the total
concealed downtime.  Emulab's services (DNS, NTP, NFS) live outside the
closed world and speak real time, so the swap system interposes on the
protocols it knows and converts embedded timestamps: inbound to the
guest's virtual time, outbound to real time.
"""

from __future__ import annotations

from repro.guest.kernel import GuestKernel


class GuestTimeTransducer:
    """Converts wall-clock timestamps crossing one guest's boundary.

    The conversion constant is the guest's concealed downtime: virtual
    time = true time − hidden, so a server timestamp ``t`` corresponds to
    guest time ``t − hidden`` and vice versa.  The transducer reads the
    guest's clock live, so it stays correct across any number of swaps.
    """

    def __init__(self, kernel: GuestKernel) -> None:
        self.kernel = kernel
        self.inbound_conversions = 0
        self.outbound_conversions = 0

    def _hidden(self) -> int:
        return self.kernel.vclock.total_hidden_ns

    def inbound_ns(self, server_time_ns: int) -> int:
        """Server (real) wall time -> guest virtual wall time."""
        self.inbound_conversions += 1
        return server_time_ns - self._hidden()

    def outbound_ns(self, guest_time_ns: int) -> int:
        """Guest virtual wall time -> server (real) wall time."""
        self.outbound_conversions += 1
        return guest_time_ns + self._hidden()

"""Stateful swapping: preempt experiments without losing run-time state."""

from repro.swap.swapper import (SavedNodeState, StatefulSwapper, SwapConfig,
                                SwapInRecord, SwapOutRecord)
from repro.swap.transduce import GuestTimeTransducer

__all__ = [
    "SavedNodeState", "StatefulSwapper", "SwapConfig", "SwapInRecord",
    "SwapOutRecord", "GuestTimeTransducer",
]

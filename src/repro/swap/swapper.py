"""Stateful swapping (§5): preempt an experiment without losing its state.

Swap-out saves each node's run-time state — the memory image and the
*current delta* of its branching disk — to the Emulab file server over the
control network, then frees the hardware.  Swap-in restores it: golden
image from the node cache, aggregated delta (lazily, by default), memory
image, then resume.  The entire swapped-out period is concealed from the
experiment by the same temporal-firewall machinery as a checkpoint.

Optimizations from the paper, all individually switchable for ablations:

* **eager copy-out** — the current delta is pushed in the background
  while the experiment still runs; blocks dirtied during the pre-copy are
  re-sent (the 20% disk-heavy swap-out penalty of §7.2);
* **lazy copy-in** — the VM resumes as soon as its memory image arrives;
  aggregated-delta blocks are demand-paged with background prefetch, which
  keeps swap-in time constant instead of growing with accumulated state;
* **delta merge** — after swap-out, the server merges the current delta
  into the aggregated delta, reordering blocks by address to restore
  locality (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SwapError
from repro.storage.mirror import EagerCopyOut, LazyCopyIn, TransferConfig
from repro.testbed.emulab import AllocatedNode, Experiment
from repro.units import MB, SECOND
from repro.xen.checkpoint import DomainSnapshot


@dataclass(frozen=True)
class SwapConfig:
    """Which swap optimizations are enabled."""

    eager_copyout: bool = True
    lazy_copyin: bool = True
    merge_deltas: bool = True
    copyout: TransferConfig = field(default_factory=lambda: TransferConfig(
        rate_limit_bytes_per_s=6 * MB))
    copyin: TransferConfig = field(default_factory=lambda: TransferConfig(
        rate_limit_bytes_per_s=11 * MB))


@dataclass
class SavedNodeState:
    """What the file server holds for one swapped-out node."""

    snapshot: DomainSnapshot
    saved_dirty_bytes: int
    current_delta_index: Dict[int, int]
    aggregated_index: Dict[int, int]


@dataclass
class SwapOutRecord:
    """Timing and volume of one swap-out."""

    started_ns: int
    finished_ns: int
    delta_blocks: int
    precopied_blocks: int
    resent_blocks: int
    memory_bytes: int

    @property
    def duration_ns(self) -> int:
        return self.finished_ns - self.started_ns


@dataclass
class SwapInRecord:
    """Timing of one swap-in (to resume; lazy transfer may continue)."""

    started_ns: int
    resumed_ns: int
    golden_download_bytes: int
    delta_bytes_before_resume: int
    memory_bytes: int
    lazy: bool

    @property
    def duration_ns(self) -> int:
        return self.resumed_ns - self.started_ns


class StatefulSwapper:
    """Swap an experiment out and back in without losing its state."""

    def __init__(self, experiment: Experiment,
                 config: Optional[SwapConfig] = None) -> None:
        self.experiment = experiment
        self.sim = experiment.sim
        self.config = config if config is not None else SwapConfig()
        self.saved: Dict[str, SavedNodeState] = {}
        self.swap_out_records: List[SwapOutRecord] = []
        self.swap_in_records: List[SwapInRecord] = []
        self._pagers: Dict[str, LazyCopyIn] = {}

    # ------------------------------------------------------------------ swap-out

    def swap_out(self):
        """Save state, free hardware (a sim process)."""
        return self.sim.process(self._swap_out())

    def _swap_out(self):
        exp = self.experiment
        if exp.state != "SWAPPED_IN":
            raise SwapError(f"{exp.spec.name} is not swapped in")
        channel = exp.testbed.control.fileserver_channel
        started = self.sim.now
        block_size = 4096

        # Phase 1 — eager pre-copy of every node's current delta, in the
        # background, while the experiment keeps running.
        copies: Dict[str, Optional[EagerCopyOut]] = {}
        hooks = {}
        if self.config.eager_copyout:
            for name, node in exp.nodes.items():
                blocks = self._delta_lbas(node)
                copy = EagerCopyOut(self.sim, node.machine.system_disk,
                                    blocks, channel, self.config.copyout)
                # Writes during pre-copy dirty already-sent blocks.
                hook = self._dirty_hook(node, copy)
                node.branch.on_write_hooks.append(hook)
                hooks[name] = hook
                copies[name] = copy
                copy.start()
            for name, copy in copies.items():
                yield copy.done
            for name, node in exp.nodes.items():
                node.branch.on_write_hooks.remove(hooks[name])

        # Phase 2 — suspend every guest (firewall up, state captured).
        suspends = [self.sim.process(self._suspend_node(node))
                    for node in exp.nodes.values()]
        results = yield self.sim.all_of(suspends)

        # Phase 3 — transfer memory images and any delta not yet on the
        # server: without pre-copy that is the whole delta; with it, the
        # blocks the guest created *after* the pre-copy pass began.
        total_resent = sum((c.resent_blocks for c in copies.values()), 0)
        total_precopied = sum((c.copied_blocks for c in copies.values()), 0)
        delta_blocks = 0
        for name, node in exp.nodes.items():
            delta_blocks += node.branch.current_delta_blocks
            if not self.config.eager_copyout:
                remaining = node.branch.current_delta_blocks
            else:
                covered = set(copies[name].blocks)
                log = node.branch.log_extent
                remaining = sum(
                    1 for off in node.branch.log_index.values()
                    if log.lba(off) not in covered)
                # Blocks that went stale after the bounded resend round.
                remaining += copies[name].pending_dirty
            if remaining:
                yield channel.transfer(remaining * block_size)
            yield channel.transfer(node.domain.memory_bytes)
            self._record_saved(node)

        # Phase 4 — free the hardware; merge deltas offline on the server.
        exp.testbed.release_machines(exp.placement.machines_used)
        exp.state = "SWAPPED_OUT_STATEFUL"
        if self.config.merge_deltas:
            for name, node in exp.nodes.items():
                merged = node.branch.merge_into_aggregated()
                self.saved[name].aggregated_index = merged

        record = SwapOutRecord(
            started_ns=started, finished_ns=self.sim.now,
            delta_blocks=delta_blocks, precopied_blocks=total_precopied,
            resent_blocks=total_resent,
            memory_bytes=sum(n.domain.memory_bytes
                             for n in exp.nodes.values()))
        self.swap_out_records.append(record)
        # The file server's catalog accounts for what we just stored.
        catalog = getattr(exp.testbed, "catalog", None)
        if catalog is not None:
            catalog.store(exp.spec.name, "delta",
                          record.delta_blocks * block_size, self.sim.now)
            catalog.store(exp.spec.name, "memory", record.memory_bytes,
                          self.sim.now)
        return record

    def _suspend_node(self, node: AllocatedNode):
        saved = yield from node.checkpointer.suspend_and_save()
        node.agent._saved = None  # not a coordinator-driven checkpoint
        self._pending_saved = getattr(self, "_pending_saved", {})
        self._pending_saved[node.spec.name] = saved
        return saved

    def _record_saved(self, node: AllocatedNode) -> None:
        snapshot, dirty = self._pending_saved[node.spec.name]
        self.saved[node.spec.name] = SavedNodeState(
            snapshot=snapshot,
            saved_dirty_bytes=dirty,
            current_delta_index=dict(node.branch.log_index),
            aggregated_index=dict(node.branch.aggregated_index),
        )

    def _delta_lbas(self, node: AllocatedNode) -> List[int]:
        """Physical LBAs of the node's current delta (log extent order)."""
        log = node.branch.log_extent
        return [log.lba(off) for off in sorted(node.branch.log_index.values())]

    def _dirty_hook(self, node: AllocatedNode, copy: EagerCopyOut):
        log = node.branch.log_extent

        def hook(vbas) -> None:
            lbas = [log.lba(node.branch.log_index[v]) for v in vbas
                    if v in node.branch.log_index]
            copy.mark_dirty(lbas)

        return hook

    # ------------------------------------------------------------------ swap-in

    def swap_in(self):
        """Restore the experiment to execution (a sim process)."""
        return self.sim.process(self._swap_in())

    def _swap_in(self):
        exp = self.experiment
        if exp.state != "SWAPPED_OUT_STATEFUL":
            raise SwapError(f"{exp.spec.name} is not statefully swapped out")
        channel = exp.testbed.control.fileserver_channel
        started = self.sim.now
        block_size = 4096
        golden_bytes = 0
        delta_before_resume = 0
        memory_bytes = 0

        exp.testbed.allocate_machines(exp.placement.machines_used)
        for name, node in exp.nodes.items():
            saved = self.saved[name]
            # Golden image: from the node cache, or re-distributed.
            golden_bytes += yield node.image_cache.ensure(node.spec.image)
            # Install the merged aggregated delta index; the current delta
            # restarts empty.
            node.branch.aggregated_index = dict(saved.aggregated_index)
            node.branch.drop_current_delta()
            if self.config.lazy_copyin:
                # Resume before the delta arrives; demand-page the rest.
                pager = LazyCopyIn(
                    self.sim, node.machine.system_disk, channel=channel,
                    config=self.config.copyin,
                    extent_start_lba=node.branch.aggregated_extent.start_lba,
                    missing_blocks=set(saved.aggregated_index.values()))
                self._pagers[name] = pager
                self._interpose_lazy_reads(node, pager)
                if pager.missing:
                    pager.start()
            else:
                # Download the whole aggregated delta up front.
                nbytes = len(saved.aggregated_index) * block_size
                delta_before_resume += nbytes
                yield channel.transfer(nbytes)
            # Memory image: the guest resumes the moment it lands.
            yield channel.transfer(node.domain.memory_bytes)
            memory_bytes += node.domain.memory_bytes
            yield self.sim.process(self._resume_node(node))

        exp.state = "SWAPPED_IN"
        exp.swap_ins += 1
        record = SwapInRecord(
            started_ns=started, resumed_ns=self.sim.now,
            golden_download_bytes=golden_bytes,
            delta_bytes_before_resume=delta_before_resume,
            memory_bytes=memory_bytes, lazy=self.config.lazy_copyin)
        self.swap_in_records.append(record)
        return record

    def _resume_node(self, node: AllocatedNode):
        kernel = node.kernel
        yield from kernel.firewall.lower_sequence()
        for vbd in node.domain.vbds:
            vbd.resume()
        for nic in node.domain.nics:
            nic.resume()

    def _interpose_lazy_reads(self, node: AllocatedNode,
                              pager: LazyCopyIn) -> None:
        """Route aggregated-delta reads through the demand pager.

        Wraps the branch's aggregated read path: a read of a block whose
        data is still on the server faults it in first.
        """
        branch = node.branch
        original_read = branch._read

        def read_with_faults(vba: int, nblocks: int):
            for b in range(vba, vba + nblocks):
                off = branch.aggregated_index.get(b)
                if off is not None and off in pager.missing:
                    yield pager.ensure_present(off, 1)
            yield from original_read(vba, nblocks)

        branch._read = read_with_faults

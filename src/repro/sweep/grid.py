"""Sweep files and deterministic grid expansion.

The grid is a mapping of dotted scenario paths to value lists; its
cross-product is expanded in sorted-key order so run numbering is stable
across machines and Python versions — run *k* of a sweep always means
the same parameter assignment.

    >>> pts = expand_grid({"b": [1, 2], "a": ["x"]})
    >>> [sorted(p.items()) for p in pts]
    [[('a', 'x'), ('b', 1)], [('a', 'x'), ('b', 2)]]
"""

from __future__ import annotations

import itertools
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ScenarioError
from repro.testbed.dsl import load_scenario_data

_STEP_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)(?:\[(\d+)\])?$")


@dataclass(frozen=True)
class SweepPlan:
    """One validated sweep file: scenario + grid + execution knobs."""

    name: str
    #: absolute path of the scenario file every run starts from
    scenario_path: str
    #: dotted-path -> value list; cross-product forms the grid
    matrix: Dict[str, List[Any]] = field(default_factory=dict)
    #: dotted-path -> value, applied to every run before the matrix
    overrides: Dict[str, Any] = field(default_factory=dict)
    repeat: int = 1
    processes: int = 0
    source: str = "<dict>"

    @property
    def grid_points(self) -> List[Dict[str, Any]]:
        return expand_grid(self.matrix)

    @property
    def total_runs(self) -> int:
        return len(self.grid_points) * self.repeat


def expand_grid(matrix: Dict[str, List[Any]]) -> List[Dict[str, Any]]:
    """Cross-product of a matrix, in sorted-key order (deterministic)."""
    if not matrix:
        return [{}]
    keys = sorted(matrix)
    return [dict(zip(keys, values))
            for values in itertools.product(*(matrix[k] for k in keys))]


def parse_path(path: str, source: str = "") -> List[Tuple[str, Optional[int]]]:
    """Split ``"checkpoints.period_ms"`` / ``"workloads[0].iterations"``
    into (key, optional index) steps."""
    steps: List[Tuple[str, Optional[int]]] = []
    for part in path.split("."):
        match = _STEP_RE.match(part)
        if match is None:
            raise ScenarioError(
                f"malformed override path {path!r} (expected dotted keys "
                f"with optional [index])", path=path, source=source)
        steps.append((match.group(1),
                      int(match.group(2)) if match.group(2) else None))
    return steps


def set_path(data: Dict[str, Any], path: str, value: Any,
             source: str = "") -> None:
    """Assign ``value`` at a dotted path, creating tables as needed.

        >>> doc = {"checkpoints": {"period_ms": 3000}}
        >>> set_path(doc, "checkpoints.period_ms", 2000)
        >>> set_path(doc, "run.seconds", 8)
        >>> doc == {"checkpoints": {"period_ms": 2000},
        ...         "run": {"seconds": 8}}
        True

    Array elements must already exist (a sweep varies values, it does
    not grow topologies):

        >>> set_path({"nodes": [{"memory_mb": 64}]},
        ...          "nodes[1].memory_mb", 32)
        Traceback (most recent call last):
          ...
        repro.errors.ScenarioError: nodes[1].memory_mb: index 1 is out of \
range (array has 1 element(s))
    """
    steps = parse_path(path, source)
    target: Any = data
    for i, (key, index) in enumerate(steps):
        last = i == len(steps) - 1
        if not isinstance(target, dict):
            raise ScenarioError(
                f"{'.'.join(s for s, _ in steps[:i])} is not a table",
                path=path, source=source)
        if index is None:
            if last:
                target[key] = value
                return
            target = target.setdefault(key, {})
        else:
            array = target.get(key)
            if not isinstance(array, list):
                raise ScenarioError(f"{key} is not an array of tables",
                                    path=path, source=source)
            if index >= len(array):
                raise ScenarioError(
                    f"index {index} is out of range (array has "
                    f"{len(array)} element(s))", path=path, source=source)
            if last:
                array[index] = value
                return
            target = array[index]


def load_sweep(path: str,
               env: Optional[Dict[str, str]] = None) -> SweepPlan:
    """Load and validate one sweep file (same placeholder rules as
    scenarios; the scenario path resolves relative to the sweep file)."""
    source = os.path.basename(path)
    data = load_scenario_data(path, env=env)
    unknown = sorted(set(data) - {"sweep", "matrix", "overrides"})
    if unknown:
        raise ScenarioError(
            f"unknown table(s) {', '.join(unknown)} "
            f"(known: matrix, overrides, sweep)",
            path=unknown[0], source=source)
    sweep = data.get("sweep")
    if not isinstance(sweep, dict):
        raise ScenarioError("missing required [sweep] table",
                            path="sweep", source=source)
    unknown = sorted(set(sweep)
                     - {"name", "scenario", "repeat", "processes"})
    if unknown:
        raise ScenarioError(
            f"unknown key(s) {', '.join(unknown)} "
            f"(known: name, processes, repeat, scenario)",
            path=f"sweep.{unknown[0]}", source=source)
    scenario = sweep.get("scenario")
    if not isinstance(scenario, str) or not scenario:
        raise ScenarioError("scenario must be a file path",
                            path="sweep.scenario", source=source)
    scenario_path = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(path)), scenario))
    if not os.path.exists(scenario_path):
        raise ScenarioError(f"scenario file not found: {scenario_path}",
                            path="sweep.scenario", source=source)
    repeat = sweep.get("repeat", 1)
    if not isinstance(repeat, int) or isinstance(repeat, bool) or repeat < 1:
        raise ScenarioError("repeat must be an integer >= 1",
                            path="sweep.repeat", source=source)
    processes = sweep.get("processes", 0)
    if (not isinstance(processes, int) or isinstance(processes, bool)
            or processes < 0):
        raise ScenarioError("processes must be an integer >= 0",
                            path="sweep.processes", source=source)
    matrix = data.get("matrix", {})
    if not isinstance(matrix, dict):
        raise ScenarioError("expected a table of path -> value-list",
                            path="matrix", source=source)
    for key, values in matrix.items():
        parse_path(key, source)
        if not isinstance(values, list) or not values:
            raise ScenarioError(
                f"expected a non-empty value list, got {values!r}",
                path=f"matrix.{key}", source=source)
    overrides = data.get("overrides", {})
    if not isinstance(overrides, dict):
        raise ScenarioError("expected a table of path -> value",
                            path="overrides", source=source)
    for key in overrides:
        parse_path(key, source)
    return SweepPlan(
        name=sweep.get("name", os.path.splitext(source)[0]),
        scenario_path=scenario_path,
        matrix={k: list(v) for k, v in matrix.items()},
        overrides=dict(overrides),
        repeat=repeat, processes=processes, source=source)

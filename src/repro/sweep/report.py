"""Human-readable rendering of a sweep report dict.

    >>> text = human_report({
    ...     "sweep": "demo", "scenario": "fig4.toml", "grid_points": 1,
    ...     "repeat": 2, "processes": 2, "wall_s": 0.5, "failures": 0,
    ...     "disagreements": [], "ok": True,
    ...     "runs": [{"run": 0, "ok": True, "digest": "ab" * 32,
    ...               "point": {"scenario.seed": 4}, "repeat": 0,
    ...               "wall_s": 0.2, "recipe": "local-parts"}]})
    >>> print(text.splitlines()[0])
    sweep demo: 1 grid point(s) x 2 repeat(s), 1 run(s) on 2 worker(s)
"""

from __future__ import annotations

from typing import Any, Dict, List


def _point_label(point: Dict[str, Any]) -> str:
    if not point:
        return "(no matrix)"
    return " ".join(f"{k}={v}" for k, v in sorted(point.items()))


def human_report(report: Dict[str, Any]) -> str:
    """Render one :func:`~repro.sweep.runner.run_sweep` report."""
    lines: List[str] = [
        f"sweep {report['sweep']}: {report['grid_points']} grid point(s) "
        f"x {report['repeat']} repeat(s), {len(report['runs'])} run(s) "
        f"on {report['processes']} worker(s)",
        f"scenario: {report['scenario']}",
        f"wall: {report['wall_s']:.2f}s",
        "",
    ]
    for run in report["runs"]:
        label = _point_label(run["point"])
        if run.get("ok"):
            lines.append(
                f"  run {run['run']:>3}  [{run['recipe']}] "
                f"{run['digest'][:16]}  {label}"
                f"  (repeat {run['repeat']}, {run['wall_s']:.2f}s)")
        else:
            lines.append(
                f"  run {run['run']:>3}  FAILED  {label}: {run['error']}")
    lines.append("")
    if report["disagreements"]:
        lines.append("DIGEST DISAGREEMENTS (determinism broken):")
        for item in report["disagreements"]:
            lines.append(f"  {_point_label(item['point'])}: "
                         f"{len(item['digests'])} distinct digests over "
                         f"runs {item['runs']}")
    lines.append(
        f"result: {'OK' if report['ok'] else 'FAILED'} "
        f"({report['failures']} failure(s), "
        f"{len(report['disagreements'])} disagreement(s))")
    return "\n".join(lines)

"""Parameter sweeps: expand one scenario over a grid, run the fleet.

A sweep file names a scenario (:mod:`repro.testbed.dsl`), a parameter
``[matrix]`` of dotted-path → value-list entries, and a ``repeat``
count.  :func:`~repro.sweep.runner.run_sweep` expands the cross-product
deterministically, runs every expansion in a worker process, and
aggregates digests/metrics/failures into one report with a
digest-agreement check across repeated runs — thousands of cheap
deterministic runs instead of one big one (ROADMAP item 2).
"""

from repro.sweep.grid import SweepPlan, expand_grid, load_sweep, set_path
from repro.sweep.report import human_report
from repro.sweep.runner import run_sweep, run_sweep_file

__all__ = ["SweepPlan", "expand_grid", "human_report", "load_sweep",
           "run_sweep", "run_sweep_file", "set_path"]

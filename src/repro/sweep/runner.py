"""The sweep fleet runner: one worker process per grid-point run.

Every run re-loads the scenario file, applies the sweep's overrides and
its grid-point assignment to the raw document, then validates, compiles,
and runs it in a fresh :class:`~repro.sim.core.Simulator` — workers
share nothing, so the sweep is embarrassingly parallel and each run is
exactly as deterministic as a standalone ``repro scenario`` invocation.
Repeated runs of the same grid point must produce identical digests;
the aggregated report carries that agreement check.
"""

from __future__ import annotations

import copy
import json
import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional

from repro.sweep.grid import SweepPlan, load_sweep, set_path

#: set in workers so nested tooling can tell it runs inside a sweep
SWEEP_WORKER_ENV = "REPRO_SWEEP_WORKER"


def _expanded_document(plan: SweepPlan,
                       point: Dict[str, Any]) -> Dict[str, Any]:
    """The scenario document for one grid point (overrides + matrix)."""
    from repro.testbed.dsl import load_scenario_data

    data = copy.deepcopy(load_scenario_data(plan.scenario_path))
    for path, value in sorted(plan.overrides.items()):
        set_path(data, path, value, source=plan.source)
    for path, value in sorted(point.items()):
        set_path(data, path, value, source=plan.source)
    return data


def _run_one(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: one deterministic run, exceptions captured.

    Top-level (picklable) on purpose; imports stay inside so workers
    pay only for what the scenario actually uses.
    """
    from repro.testbed.compile import compile_scenario
    from repro.testbed.dsl import parse_scenario

    os.environ[SWEEP_WORKER_ENV] = "1"
    started = time.perf_counter()  # repro: noqa=DET001 — wall cost report
    record: Dict[str, Any] = {"run": task["run"], "point": task["point"],
                              "repeat": task["repeat"]}
    try:
        spec = parse_scenario(task["data"], source=task["source"])
        result = compile_scenario(spec).run()
        record.update(ok=True, digest=result.digest, recipe=result.recipe,
                      virtual_now_ns=result.virtual_now_ns,
                      details=result.details)
    except Exception as exc:  # noqa: BLE001 — a failed run is a report row
        record.update(ok=False, error=f"{type(exc).__name__}: {exc}")
    record["wall_s"] = round(
        time.perf_counter() - started, 4)  # repro: noqa=DET001
    return record


def run_sweep(plan: SweepPlan,
              processes: Optional[int] = None) -> Dict[str, Any]:
    """Expand the grid, run the fleet, aggregate the report dict.

    ``processes`` overrides the plan (0 or None = one per CPU, capped at
    the run count; 1 = run inline, no pool — handy under debuggers).
    """
    points = plan.grid_points
    tasks: List[Dict[str, Any]] = []
    run_id = 0
    for point in points:
        data = _expanded_document(plan, point)
        for repeat in range(plan.repeat):
            tasks.append({"run": run_id, "point": point, "repeat": repeat,
                          "data": copy.deepcopy(data),
                          "source": os.path.basename(plan.scenario_path)})
            run_id += 1
    if processes is None:
        processes = plan.processes
    if not processes:
        processes = os.cpu_count() or 1
    processes = max(1, min(processes, len(tasks)))
    started = time.perf_counter()  # repro: noqa=DET001 — wall cost report
    if processes == 1:
        records = [_run_one(task) for task in tasks]
    else:
        with multiprocessing.Pool(processes) as pool:
            records = pool.map(_run_one, tasks)
    wall_s = round(time.perf_counter() - started, 4)  # repro: noqa=DET001

    # digest agreement: all repeats of one grid point must match
    groups: Dict[str, Dict[str, Any]] = {}
    for record in records:
        key = json.dumps(record["point"], sort_keys=True, default=str)
        group = groups.setdefault(key, {"point": record["point"],
                                        "digests": [], "runs": []})
        group["runs"].append(record["run"])
        if record.get("ok"):
            group["digests"].append(record["digest"])
    disagreements = [
        {"point": g["point"], "runs": g["runs"],
         "digests": sorted(set(g["digests"]))}
        for g in groups.values() if len(set(g["digests"])) > 1]
    failures = [r for r in records if not r.get("ok")]
    return {
        "sweep": plan.name,
        "scenario": plan.scenario_path,
        "grid_points": len(points),
        "repeat": plan.repeat,
        "runs": records,
        "failures": len(failures),
        "disagreements": disagreements,
        "processes": processes,
        "wall_s": wall_s,
        "ok": not failures and not disagreements,
    }


def run_sweep_file(path: str, processes: Optional[int] = None,
                   out: Optional[str] = None) -> Dict[str, Any]:
    """Load a sweep file, run it, optionally write the JSON report."""
    report = run_sweep(load_sweep(path), processes=processes)
    if out:
        os.makedirs(os.path.dirname(os.path.abspath(out)), exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
    return report

"""Paravirtual devices: network and block frontends.

Virtual devices share state with the hypervisor (rings, grant tables), so a
checkpoint must tear them down and reconnect on resume (§3.1).  Suspending
a NIC freezes its interface: arriving packets accumulate in the ring and
are replayed on reconnect — the endpoint in-flight log.  Suspending a block
device first *drains* in-flight requests; its IRQ handlers are one of the
activities that run outside the temporal firewall for exactly this purpose
(§4.1).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import CheckpointError
from repro.net.interface import Interface
from repro.sim.core import Event, Simulator
from repro.units import US

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.disk import Disk


class VirtualNIC:
    """Network frontend bound to a physical interface."""

    def __init__(self, sim: Simulator, iface: Interface) -> None:
        self.sim = sim
        self.iface = iface
        self.suspended = False
        self.replayed_total = 0

    def suspend(self) -> None:
        """Disconnect from the backend; ring buffers arrivals."""
        if self.suspended:
            raise CheckpointError(f"NIC {self.iface.name} already suspended")
        self.suspended = True
        if not self.iface.frozen:
            self.iface.freeze()

    def resume(self) -> int:
        """Reconnect; replays ring contents.  Returns packets replayed."""
        if not self.suspended:
            raise CheckpointError(f"NIC {self.iface.name} is not suspended")
        self.suspended = False
        replayed = self.iface.thaw()
        self.replayed_total += replayed
        return replayed


class VirtualBlockDevice:
    """Block frontend with in-flight request tracking.

    The ``backend`` is anything exposing ``read(lba, n) -> Event`` and
    ``write(lba, n) -> Event`` (a raw :class:`~repro.hw.disk.Disk` or a
    branching-storage volume).
    """

    #: polling interval while draining in-flight requests at suspend
    DRAIN_POLL_NS = 50 * US

    def __init__(self, sim: Simulator, backend, name: str = "vbd") -> None:
        self.sim = sim
        self.backend = backend
        self.name = name
        self.inflight = 0
        self.suspended = False
        self.total_reads = 0
        self.total_writes = 0

    def read(self, lba: int, nblocks: int = 1) -> Event:
        """Issue a guest read through the frontend ring."""
        return self._issue(self.backend.read, lba, nblocks, is_write=False)

    def write(self, lba: int, nblocks: int = 1) -> Event:
        """Issue a guest write through the frontend ring."""
        return self._issue(self.backend.write, lba, nblocks, is_write=True)

    def _issue(self, op, lba: int, nblocks: int, is_write: bool) -> Event:
        if self.suspended:
            raise CheckpointError(
                f"I/O issued to suspended block device {self.name}")
        self.inflight += 1
        if is_write:
            self.total_writes += 1
        else:
            self.total_reads += 1
        done = Event(self.sim)
        inner = op(lba, nblocks)

        def complete(_ev) -> None:
            # The completion IRQ (BLOCK_IRQ) runs outside the firewall so
            # in-flight requests can drain during suspend.
            self.inflight -= 1
            done.succeed()

        inner.add_callback(complete)
        return done

    def drain(self):
        """Generator: waits until all in-flight requests complete."""
        while self.inflight > 0:
            yield self.sim.timeout(self.DRAIN_POLL_NS)

    def suspend_after_drain(self):
        """Generator: drain then disconnect (run from the suspend thread)."""
        yield from self.drain()
        self.suspended = True

    def resume(self) -> None:
        """Reconnect the frontend."""
        self.suspended = False

"""XenBus: event channels between the hypervisor/tools and a guest.

XenBus watch handlers are one of the few activities that run *outside* the
temporal firewall — they carry the suspend request and checkpoint
coordination while the rest of the guest is stopped (§4.1).  Delivery
checks the XENBUS gate, which the firewall deliberately leaves open.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, TYPE_CHECKING

from repro.guest.activities import Activity
from repro.sim.core import Simulator
from repro.units import US

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.kernel import GuestKernel


class XenBus:
    """Per-domain event channel endpoint."""

    #: latency of a cross-domain event notification
    EVENT_LATENCY_NS = 5 * US

    def __init__(self, sim: Simulator, kernel: "GuestKernel") -> None:
        self.sim = sim
        self.kernel = kernel
        self._watches: Dict[str, List[Callable[[Any], None]]] = {}
        self.events_delivered = 0

    def watch(self, path: str, handler: Callable[[Any], None]) -> None:
        """Register a watch handler for ``path``."""
        self._watches.setdefault(path, []).append(handler)

    def notify(self, path: str, value: Any = None) -> None:
        """Fire the watch handlers for ``path`` (asynchronously)."""

        def deliver() -> None:
            # XenBus handlers run outside the firewall; the gate check
            # documents (and enforces) that the firewall leaves them open.
            self.kernel.gates.check(Activity.XENBUS)
            self.events_delivered += 1
            for handler in self._watches.get(path, ()):
                handler(value)

        self.sim.call_in(self.EVENT_LATENCY_NS, deliver)

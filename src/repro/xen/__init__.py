"""Xen-like hypervisor layer: domains, devices, local live checkpoint."""

from repro.xen.checkpoint import (CheckpointConfig, CheckpointResult,
                                  DomainSnapshot, LocalCheckpointer)
from repro.xen.devices import VirtualBlockDevice, VirtualNIC
from repro.xen.hypervisor import (Domain, Hypervisor, ParavirtTimeSource,
                                  RunState, SharedInfoPage)
from repro.xen.xenbus import XenBus

__all__ = [
    "CheckpointConfig", "CheckpointResult", "DomainSnapshot",
    "LocalCheckpointer", "VirtualBlockDevice", "VirtualNIC", "Domain",
    "Hypervisor", "ParavirtTimeSource", "RunState", "SharedInfoPage",
    "XenBus",
]

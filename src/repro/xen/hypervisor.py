"""The hypervisor: domains, paravirtual time, run-state accounting.

Xen exposes time to guests through a shared-info page (wall clock + system
time + a TSC snapshot) that it updates periodically; guests interpolate
with RDTSC between updates (§4.2).  During a checkpoint the hypervisor
stops page updates, restricts the guest TSC, and suspends run-state
accounting — those are the hooks :class:`Domain` wires into the guest
kernel's ``on_time_frozen`` / ``on_time_thawed`` callbacks.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import CheckpointError
from repro.guest.kernel import GuestKernel
from repro.hw.machine import Machine
from repro.hw.tsc import GuestTSC
from repro.net.interface import Interface
from repro.sim.core import Simulator
from repro.sim.random import derived_rng
from repro.obs.trace import Tracer
from repro.units import MB, MS
from repro.xen.devices import VirtualBlockDevice, VirtualNIC
from repro.xen.xenbus import XenBus


class RunState(enum.Enum):
    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    OFFLINE = "offline"


@dataclass
class SharedInfoPage:
    """The guest-visible time page.

    ``system_time_ns`` is the guest's virtual system time at the moment of
    the last update, paired with the TSC value then; the guest interpolates
    between updates by scaling TSC deltas.
    """

    system_time_ns: int = 0
    wall_time_ns: int = 0
    tsc_at_update: int = 0
    updates: int = 0
    frozen: bool = False


class ParavirtTimeSource:
    """How a guest actually computes time: page + TSC interpolation.

    Provided alongside the kernel's logical virtual clock to demonstrate
    that the paravirtual ABI and the model agree (tests assert they track
    each other within an update period, and that both freeze together).
    """

    def __init__(self, page: SharedInfoPage, tsc: GuestTSC,
                 tsc_hz: int) -> None:
        self.page = page
        self.tsc = tsc
        self.tsc_hz = tsc_hz

    def system_time(self) -> int:
        delta_ticks = self.tsc.read() - self.page.tsc_at_update
        return self.page.system_time_ns + int(delta_ticks * 1e9 / self.tsc_hz)

    def wall_time(self) -> int:
        delta_ticks = self.tsc.read() - self.page.tsc_at_update
        return self.page.wall_time_ns + int(delta_ticks * 1e9 / self.tsc_hz)


class Domain:
    """One guest VM."""

    def __init__(self, hypervisor: "Hypervisor", name: str,
                 memory_bytes: int, kernel: GuestKernel) -> None:
        self.hypervisor = hypervisor
        self.sim = hypervisor.sim
        self.name = name
        self.memory_bytes = memory_bytes
        self.kernel = kernel
        self.guest_tsc = GuestTSC(hypervisor.machine.oscillator)
        self.page = SharedInfoPage()
        self.time_source = ParavirtTimeSource(
            self.page, self.guest_tsc, hypervisor.machine.oscillator.freq_hz)
        self.xenbus = XenBus(self.sim, kernel)
        self.nics: list[VirtualNIC] = []
        self.vbds: list[VirtualBlockDevice] = []
        self.runstate = RunState.RUNNING
        self.runstate_ns: Dict[RunState, int] = {s: 0 for s in RunState}
        self._runstate_since = self.sim.now
        self._accounting_suspended = False
        kernel.on_time_frozen = self._freeze_time_sources
        kernel.on_time_thawed = self._thaw_time_sources

    # -- device management -------------------------------------------------------

    def attach_nic(self, iface: Interface) -> VirtualNIC:
        nic = VirtualNIC(self.sim, iface)
        self.nics.append(nic)
        return nic

    def attach_vbd(self, backend, name: str = "") -> VirtualBlockDevice:
        vbd = VirtualBlockDevice(self.sim, backend,
                                 name or f"{self.name}.vbd{len(self.vbds)}")
        self.vbds.append(vbd)
        return vbd

    # -- time virtualization --------------------------------------------------------

    def _freeze_time_sources(self) -> None:
        """§4.2: stop page updates, restrict TSC, suspend accounting."""
        self.page.frozen = True
        self.guest_tsc.restrict()
        self._account_runstate()
        self._accounting_suspended = True

    def _thaw_time_sources(self) -> None:
        self.guest_tsc.unrestrict()
        self.page.frozen = False
        self._accounting_suspended = False
        self._runstate_since = self.sim.now
        self.hypervisor.update_page(self)

    # -- run-state accounting ----------------------------------------------------------

    def _account_runstate(self) -> None:
        if self._accounting_suspended:
            return
        elapsed = self.sim.now - self._runstate_since
        self.runstate_ns[self.runstate] += elapsed
        self._runstate_since = self.sim.now

    def set_runstate(self, state: RunState) -> None:
        self._account_runstate()
        self.runstate = state

    def __repr__(self) -> str:
        return f"<Domain {self.name} {self.memory_bytes // MB} MB>"


class Hypervisor:
    """Xen on one machine: hosts domains, updates their time pages."""

    #: period of shared-info page updates.  Guests interpolate between
    #: updates with the TSC, so the period bounds event-loop overhead, not
    #: guest time precision.
    PAGE_UPDATE_PERIOD_NS = 50 * MS

    def __init__(self, sim: Simulator, machine: Machine,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.machine = machine
        self.tracer = tracer
        self.domains: Dict[str, Domain] = {}
        self._updating = False

    def create_domain(self, name: str, memory_bytes: int = 256 * MB,
                      rng: Optional[random.Random] = None,
                      epoch_wall_ns: int = 0) -> Domain:
        """Boot a new paravirtualized guest.

        Without an explicit ``rng`` the domain draws from its own named
        substream, so co-hosted domains never share a draw sequence.
        """
        if name in self.domains:
            raise CheckpointError(f"domain {name} already exists")
        rng = rng or derived_rng(f"domain.{self.machine.name}.{name}")
        kernel = GuestKernel(self.sim, self.machine, name, rng=rng,
                             tracer=self.tracer, epoch_wall_ns=epoch_wall_ns)
        domain = Domain(self, name, memory_bytes, kernel)
        self.domains[name] = domain
        self.update_page(domain)
        if not self._updating:
            self._updating = True
            self.sim.process(self._page_update_loop())
        return domain

    def update_page(self, domain: Domain) -> None:
        """Refresh one domain's shared-info page."""
        if domain.page.frozen:
            return
        domain.page.system_time_ns = domain.kernel.vclock.now()
        domain.page.wall_time_ns = domain.kernel.vclock.wall_time()
        domain.page.tsc_at_update = domain.guest_tsc.read()
        domain.page.updates += 1

    def _page_update_loop(self):
        while True:
            for domain in self.domains.values():
                self.update_page(domain)
            yield self.sim.timeout(self.PAGE_UPDATE_PERIOD_NS)

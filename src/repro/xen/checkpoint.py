"""Local live checkpoint of one domain (§4).

Extends "live migration" mechanics into a live checkpoint: memory is
pre-copied while the guest runs (dom0 work that contends with the guest for
CPU — the residual perturbation measured in Figure 5), then the guest is
suspended through the temporal firewall, the dirty residue and device state
are saved, and the guest resumes.  From inside the guest, the suspend is
invisible except for the microsecond-scale firewall window.

The checkpointer is deliberately explicit about its phases so benchmarks
can attribute every artifact: pre-copy contention, device drain, firewall
raise window, stop-and-copy downtime, NIC replay count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CheckpointError
from repro.sim.core import Simulator
from repro.sim.process import Process
from repro.units import MB, MS, SECOND, US, transfer_time_ns
from repro.xen.hypervisor import Domain

_snapshot_ids = itertools.count(1)


@dataclass(frozen=True)
class CheckpointConfig:
    """Tunables of the live checkpoint."""

    #: memory copy rate to the snapshot sink (bytes/s)
    copy_rate_bps: int = 400 * MB
    #: fraction of memory still dirty at stop-and-copy
    dirty_fraction: float = 0.02
    #: CPU weight of dom0 copy work relative to the guest.  Calibrated to
    #: the paper's Figure 5: a full-overlap iteration stretches by
    #: work * weight, and the measured worst case is 27 ms on a 236.6 ms
    #: iteration (~11%).
    dom0_weight: float = 0.11
    #: fixed device suspend/resume overhead inside the downtime
    device_overhead_ns: int = 800 * US
    #: skip the live pre-copy phase (pure stop-and-copy, non-live)
    live: bool = True


@dataclass
class DomainSnapshot:
    """A saved domain image (memory + device state descriptor)."""

    snapshot_id: int
    domain_name: str
    memory_bytes: int
    taken_at_true_ns: int
    taken_at_virtual_ns: int


@dataclass
class CheckpointResult:
    """Everything one local checkpoint did, for analysis."""

    snapshot: DomainSnapshot
    started_at_ns: int
    precopy_ns: int
    downtime_ns: int
    freeze_window_ns: int
    thaw_window_ns: int
    clock_frozen_at_ns: int
    clock_thawed_at_ns: int
    memory_copied_bytes: int
    dirty_copied_bytes: int
    replayed_packets: int
    #: per-stage true-time totals from the driving pipeline (when known)
    stage_timings_ns: dict = field(default_factory=dict)


class LocalCheckpointer:
    """Checkpoints one domain transparently."""

    def __init__(self, domain: Domain,
                 config: Optional[CheckpointConfig] = None,
                 tracer=None) -> None:
        self.domain = domain
        self.sim: Simulator = domain.sim
        self.config = config if config is not None else CheckpointConfig()
        #: forwarded to the lazily built local pipeline (stage spans)
        self.tracer = tracer
        self.results: list[CheckpointResult] = []
        self._busy = False
        self._pipeline = None
        self._provider = None

    def checkpoint(self) -> Process:
        """Start a checkpoint; the returned process yields the result."""
        return self.sim.process(self.run())

    def pipeline(self):
        """The local single-provider pipeline driving :meth:`run`."""
        if self._pipeline is None:
            # Imported lazily: repro.checkpoint pulls this module in at
            # package-import time, so a top-level import would cycle.
            from repro.checkpoint.pipeline import (CheckpointPipeline,
                                                   DomainProvider)
            self._provider = DomainProvider(self)
            self._pipeline = CheckpointPipeline(
                self.sim, [self._provider], tracer=self.tracer,
                session=f"local.{self.domain.name}")
        return self._pipeline

    # The body is public so coordinators can drive it inside their own
    # processes (``yield from checkpointer.run()``).
    def run(self):
        if self._busy:
            raise CheckpointError(
                f"checkpoint of {self.domain.name} already in progress")
        self._busy = True
        try:
            pipeline = self.pipeline()
            yield from pipeline.run_local()
            result = self._provider.last_result
            result.stage_timings_ns = pipeline.timings_by_stage()
            return result
        finally:
            self._busy = False

    # ------------------------------------------------------------------ phases
    #
    # The phases are public generators so a distributed coordinator can
    # sequence them around its own barriers (prepare → suspend at T →
    # barrier → resume).

    def precopy(self):
        """Phase 1 — live pre-copy while the guest runs.

        dom0 walks and copies all of memory; the copy work shares the CPU
        at ``dom0_weight``, which is the only guest-visible cost of a live
        checkpoint (the perturbation Figure 5 measures).
        """
        cfg = self.config
        domain = self.domain
        precopy_start = self.sim.now
        memory_copied = 0
        if cfg.live:
            duration = transfer_time_ns(domain.memory_bytes, cfg.copy_rate_bps)
            share = cfg.dom0_weight / (1.0 + cfg.dom0_weight)
            copy_cpu_work = int(duration * share)
            if copy_cpu_work > 0:
                domain.kernel.cpu_outside(copy_cpu_work,
                                          weight=cfg.dom0_weight)
            yield self.sim.timeout(duration)
            memory_copied = domain.memory_bytes
        return memory_copied, self.sim.now - precopy_start

    def quiesce(self):
        """Phase 2a — stop I/O: disconnect NICs, drain block devices."""
        domain = self.domain
        for nic in domain.nics:
            nic.suspend()
        for vbd in domain.vbds:
            yield from vbd.suspend_after_drain()

    def suspend(self):
        """Phase 2b — raise the temporal firewall; guest time stops."""
        yield from self.domain.kernel.firewall.raise_sequence()

    def save(self):
        """Phase 3 — stop-and-copy the dirty residue + device state.

        This is the checkpoint's true downtime; the guest cannot observe
        it.  Returns ``(snapshot, dirty_bytes)``.
        """
        cfg = self.config
        domain = self.domain
        kernel = domain.kernel
        dirty = (int(domain.memory_bytes * cfg.dirty_fraction)
                 if cfg.live else domain.memory_bytes)
        yield self.sim.timeout(transfer_time_ns(max(1, dirty),
                                                cfg.copy_rate_bps))
        yield self.sim.timeout(cfg.device_overhead_ns)
        snapshot = DomainSnapshot(
            snapshot_id=next(_snapshot_ids),
            domain_name=domain.name,
            memory_bytes=domain.memory_bytes,
            taken_at_true_ns=self.sim.now,
            taken_at_virtual_ns=kernel.vclock.now(),
        )
        return snapshot, dirty

    def suspend_and_save(self):
        """Phases 2–3 composed (kept for callers that drive both at once)."""
        yield from self.quiesce()
        yield from self.suspend()
        return (yield from self.save())

    def resume(self, started, precopy_ns, memory_copied, snapshot, dirty):
        """Phase 4 — lower the firewall, reconnect devices, replay rings."""
        domain = self.domain
        kernel = domain.kernel
        yield from kernel.firewall.lower_sequence()
        for vbd in domain.vbds:
            vbd.resume()
        replayed = 0
        for nic in domain.nics:
            replayed += nic.resume()
        clock_frozen_at = kernel.firewall.last_clock_frozen_at_ns
        clock_thawed_at = kernel.firewall.last_clock_thawed_at_ns
        return CheckpointResult(
            snapshot=snapshot,
            started_at_ns=started,
            precopy_ns=precopy_ns,
            downtime_ns=clock_thawed_at - clock_frozen_at,
            freeze_window_ns=kernel.firewall.last_freeze_window_ns,
            thaw_window_ns=kernel.firewall.last_thaw_window_ns,
            clock_frozen_at_ns=clock_frozen_at,
            clock_thawed_at_ns=clock_thawed_at,
            memory_copied_bytes=memory_copied + dirty,
            dirty_copied_bytes=dirty,
            replayed_packets=replayed,
        )

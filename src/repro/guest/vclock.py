"""Guest virtual clocks.

A guest never reads true time: it reads a virtual clock that the hypervisor
and the temporal firewall can freeze.  While frozen, the clock holds its
value; on thaw, the downtime is added to the clock's *hidden* total, so
virtual time is continuous across a checkpoint.  This is the model of the
paper's time virtualization (§4.2): suspending shared-info-page updates,
restricting the TSC, and stopping ``xtime``/``jiffies`` accounting all
collapse to "the guest's time sources hold still".
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ClockError
from repro.sim.core import Simulator
from repro.sim.random import derived_rng


class VirtualClock:
    """Monotonic guest time: true time minus all concealed downtime.

    ``rebase_jitter_ns`` models the imprecision of re-basing the guest's
    time sources at resume (re-programming the TSC offset and rewriting
    the shared-info page is accurate only to tens of microseconds on the
    paper's hardware).  Each thaw leaks up to that much downtime into
    guest-visible time — the residual error Figure 4 measures at
    checkpoints.  The clock stays monotonic: the leak only ever makes
    virtual time jump slightly *forward*.
    """

    def __init__(self, sim: Simulator, epoch_wall_ns: int = 0,
                 rng: Optional[random.Random] = None,
                 rebase_jitter_ns: int = 0) -> None:
        self.sim = sim
        self.epoch_wall_ns = epoch_wall_ns
        self.rng = rng or derived_rng("vclock")
        self.rebase_jitter_ns = rebase_jitter_ns
        self._hidden = 0
        self._frozen = False
        self._frozen_value = 0
        self.freezes = 0
        self.total_hidden_ns = 0
        self.total_rebase_error_ns = 0

    @property
    def frozen(self) -> bool:
        return self._frozen

    def now(self) -> int:
        """Virtual nanoseconds since guest boot."""
        if self._frozen:
            return self._frozen_value
        return self.sim.now - self._hidden

    def wall_time(self) -> int:
        """Virtual wall-clock time (epoch + virtual time)."""
        return self.epoch_wall_ns + self.now()

    def freeze(self) -> None:
        """Stop the clock at its current value."""
        if self._frozen:
            raise ClockError("virtual clock already frozen")
        self._frozen_value = self.now()
        self._frozen = True
        self.freezes += 1

    def thaw(self) -> int:
        """Resume the clock; returns the downtime just concealed (true ns)."""
        if not self._frozen:
            raise ClockError("virtual clock is not frozen")
        downtime = (self.sim.now - self._hidden) - self._frozen_value
        leak = 0
        if self.rebase_jitter_ns > 0:
            leak = min(downtime, self.rng.randint(0, self.rebase_jitter_ns))
            self.total_rebase_error_ns += leak
        self._hidden += downtime - leak
        self.total_hidden_ns += downtime - leak
        self._frozen = False
        return downtime

    # -- snapshot/restore ------------------------------------------------------

    def serialize_state(self) -> dict:
        """Hidden-time accounting and rebase-RNG position, JSON-safe.

        The rebase RNG state rides along so a restored clock's *next*
        jitter draw matches the snapshotted world's next draw (the
        determinism contract of every serialize/restore pair).
        """
        from repro.sim.random import rng_state_to_json

        return {"hidden": self._hidden, "frozen": self._frozen,
                "frozen_value": self._frozen_value,
                "freezes": self.freezes,
                "total_hidden_ns": self.total_hidden_ns,
                "total_rebase_error_ns": self.total_rebase_error_ns,
                "rng": rng_state_to_json(self.rng.getstate())}

    def restore_state(self, state: dict) -> None:
        """Re-apply a :meth:`serialize_state` payload (same sim instant)."""
        from repro.sim.random import rng_state_from_json

        expected = ("hidden", "frozen", "frozen_value", "freezes",
                    "total_hidden_ns", "total_rebase_error_ns", "rng")
        if not isinstance(state, dict) or set(state) != set(expected):
            raise ClockError("malformed virtual-clock payload")
        self._hidden = state["hidden"]
        self._frozen = state["frozen"]
        self._frozen_value = state["frozen_value"]
        self.freezes = state["freezes"]
        self.total_hidden_ns = state["total_hidden_ns"]
        self.total_rebase_error_ns = state["total_rebase_error_ns"]
        self.rng.setstate(rng_state_from_json(state["rng"]))

"""The paravirtualized guest kernel.

:class:`GuestKernel` assembles the guest-side world: virtual clock, virtual
timer wheel, dispatch gates, temporal firewall, a network stack whose
timers live in virtual time, and thread management.  Workloads only ever
talk to this API (``sleep``, ``cpu``, ``gettimeofday``, sockets), so a
transparent checkpoint is invisible to them by construction *if and only
if* the firewall machinery works — which the tests and benchmarks verify.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, Optional

from repro.errors import FirewallViolation
from repro.guest.activities import Activity, GateTable
from repro.guest.firewall import TemporalFirewall
from repro.guest.threads import GuestThread, ThreadKind
from repro.guest.timer import VirtualTimerWheel
from repro.guest.vclock import VirtualClock
from repro.hw.machine import Machine
from repro.net.host import Host
from repro.net.tcp import TCPStack
from repro.net.udp import UDPStack
from repro.sim.core import Event, Simulator
from repro.sim.random import derived_rng
from repro.obs.trace import Tracer, maybe_record
from repro.units import US


class GuestKernel:
    """A guest operating system instance on a machine."""

    def __init__(self, sim: Simulator, machine: Machine, name: str,
                 rng: Optional[random.Random] = None,
                 tracer: Optional[Tracer] = None,
                 epoch_wall_ns: int = 0) -> None:
        self.sim = sim
        self.machine = machine
        self.name = name
        self.rng = rng or derived_rng(f"guest.{name}")
        self.tracer = tracer
        self.vclock = VirtualClock(sim, epoch_wall_ns, rng=self.rng,
                                   rebase_jitter_ns=45_000)
        self.timers = VirtualTimerWheel(sim, self.vclock, self.rng,
                                        name=f"{name}.timers")
        self.gates = GateTable(name)
        self.firewall = TemporalFirewall(self, rng=self.rng)
        self.host = Host(sim, name, timers=self.timers, tracer=tracer)
        self.tcp = TCPStack(self.host)
        self.udp = UDPStack(self.host)
        self.threads: list[GuestThread] = []
        #: hooks the hypervisor installs (restrict TSC, stop page updates)
        self.on_time_frozen: Callable[[], None] = lambda: None
        self.on_time_thawed: Callable[[], None] = lambda: None
        self._user_tag = f"{name}/u/"
        self._kernel_tag = f"{name}/k/"
        self._outside_tag = f"{name}/ckpt/"

    # ------------------------------------------------------------------ time API

    def now(self) -> int:
        """Guest monotonic time (virtual ns since boot)."""
        return self.vclock.now()

    def gettimeofday(self) -> int:
        """Guest wall-clock time (virtual)."""
        return self.vclock.wall_time()

    # ------------------------------------------------------------------ thread API

    def spawn(self, body: Callable[["GuestKernel"], Generator],
              name: str = "thread", kind: ThreadKind = ThreadKind.USER,
              outside_firewall: bool = False) -> GuestThread:
        """Start a guest thread running ``body(kernel)``."""
        thread = GuestThread(self, name, body, kind, outside_firewall)
        self.threads.append(thread)
        return thread

    #: guest timer-interrupt period (HZ=100, the paper-era Linux default)
    TICK_NS = 10_000_000

    def sleep(self, delay_ns: int, posix: bool = False) -> Event:
        """An event that fires after ``delay_ns`` of *virtual* time.

        With ``posix=True`` the delay is rounded the way ``nanosleep`` on a
        tick-driven kernel rounds it — up to the next timer tick plus one
        guard tick — which is why the paper's ``usleep(10 ms)`` loop
        iterates every 20 ms (Figure 4).
        """
        if posix:
            delay_ns = (delay_ns // self.TICK_NS + 1) * self.TICK_NS
        ev = Event(self.sim)
        self.timers.call_in(delay_ns, lambda: self._fire_timer(ev))
        return ev

    def _fire_timer(self, ev: Event) -> None:
        self.gates.check(Activity.TIMER)
        ev.succeed()

    def cpu(self, work_ns: int, weight: float = 1.0,
            kind: ThreadKind = ThreadKind.USER) -> Event:
        """Consume guest CPU time (stops under the firewall)."""
        tag = self._user_tag if kind == ThreadKind.USER else self._kernel_tag
        if self.gates.is_closed(Activity.USER_THREAD) and \
                kind == ThreadKind.USER:
            raise FirewallViolation(
                f"user CPU work submitted inside the firewall on {self.name}")
        return self.machine.cpu.execute(work_ns, weight, tag)

    def cpu_outside(self, work_ns: int, weight: float = 1.0) -> Event:
        """CPU work for checkpoint code (never frozen)."""
        return self.machine.cpu.execute(work_ns, weight, self._outside_tag)

    # ------------------------------------------------------------------ firewall hooks

    def stop_user_execution(self) -> None:
        """Scheduler stops selecting user threads."""
        self.machine.cpu.freeze(self._user_tag)

    def stop_kernel_execution(self) -> None:
        """Scheduler stops kernel threads / workqueue workers."""
        self.machine.cpu.freeze(self._kernel_tag)

    def resume_kernel_execution(self) -> None:
        self.machine.cpu.thaw(self._kernel_tag)

    def resume_user_execution(self) -> None:
        self.machine.cpu.thaw(self._user_tag)

    # ------------------------------------------------------------------ introspection

    @property
    def frozen(self) -> bool:
        """True while the temporal firewall is up."""
        return self.firewall.up

    def trace(self, category: str, **fields) -> None:
        """Record a trace event stamped with *virtual* time."""
        maybe_record(self.tracer, category, vtime=self.now(),
                     true_time=self.sim.now, kernel=self.name, **fields)

    def __repr__(self) -> str:
        return f"<GuestKernel {self.name} vtime={self.now()}>"

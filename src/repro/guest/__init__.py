"""Guest kernel models: virtual time, temporal firewall, threads."""

from repro.guest.activities import Activity, GateTable, INSIDE_FIREWALL
from repro.guest.firewall import FirewallState, TemporalFirewall
from repro.guest.kernel import GuestKernel
from repro.guest.threads import GuestThread, ThreadKind
from repro.guest.timer import VirtualTimerWheel
from repro.guest.vclock import VirtualClock

__all__ = [
    "Activity", "GateTable", "INSIDE_FIREWALL", "FirewallState",
    "TemporalFirewall", "GuestKernel", "GuestThread", "ThreadKind",
    "VirtualTimerWheel", "VirtualClock",
]

"""The temporal firewall (§4.1–4.2) — the paper's primary mechanism.

The firewall is a control layer inside the guest kernel that isolates time
and execution of the checkpoint code from the rest of the system.  Raising
it stops, in order:

1. user threads (via the scheduler),
2. kernel threads and workqueues,
3. IRQ / softirq / timer dispatch (the gates),
4. the virtual timer wheel,
5. the virtual clock and guest TSC (time itself).

Only outside-firewall activities — the suspend thread, XenBus handlers,
block-IRQ drain — keep running.  Each step costs a few microseconds of true
time (scheduler walks, IPIs, hypercalls); the window between the first stop
and the clock freeze is the *residual non-atomicity* of the checkpoint, and
is exactly what bounds the in-guest time error the paper measures in
Figure 4 (~80 µs at a checkpoint vs. ~28 µs baseline timer accuracy).

Lowering reverses the order, so execution can never observe a running
clock while threads were stopped longer than that same small window.
"""

from __future__ import annotations

import enum
import random
from typing import Generator, Optional, TYPE_CHECKING

from repro.errors import FirewallViolation
from repro.guest.activities import INSIDE_FIREWALL
from repro.sim.random import derived_rng
from repro.units import US

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.kernel import GuestKernel


class FirewallState(enum.Enum):
    DOWN = "down"
    RAISING = "raising"
    UP = "up"
    LOWERING = "lowering"


class TemporalFirewall:
    """Freezes guest time and execution atomically (to the guest)."""

    def __init__(self, kernel: "GuestKernel",
                 min_step_cost_ns: int = 3 * US,
                 max_step_cost_ns: int = 12 * US,
                 rng: Optional[random.Random] = None) -> None:
        self.kernel = kernel
        self.min_step_cost_ns = min_step_cost_ns
        self.max_step_cost_ns = max_step_cost_ns
        self.rng = rng or derived_rng(f"firewall.{kernel.name}")
        self.state = FirewallState.DOWN
        self.raises = 0
        self.last_freeze_window_ns = 0
        self.last_thaw_window_ns = 0
        self.last_clock_frozen_at_ns = 0
        self.last_clock_thawed_at_ns = 0

    def _step_cost(self) -> int:
        return self.rng.randint(self.min_step_cost_ns, self.max_step_cost_ns)

    @property
    def up(self) -> bool:
        return self.state == FirewallState.UP

    # -- raise ---------------------------------------------------------------------

    def raise_sequence(self) -> Generator:
        """Stop guest execution and time.  Run from the suspend thread.

        This is a generator: the caller (outside-firewall checkpoint code)
        drives it inside a sim process, so each step consumes true time
        while the guest is progressively stopped.
        """
        if self.state != FirewallState.DOWN:
            raise FirewallViolation(
                f"cannot raise firewall in state {self.state.value}")
        kernel = self.kernel
        self.state = FirewallState.RAISING
        start = kernel.sim.now
        # 1. Stop user threads via the scheduler.
        yield kernel.sim.timeout(self._step_cost())
        kernel.stop_user_execution()
        # 2. Stop kernel threads and workqueue workers.
        yield kernel.sim.timeout(self._step_cost())
        kernel.stop_kernel_execution()
        # 3. Close dispatch gates for IRQs, softirqs, and timer jobs.
        yield kernel.sim.timeout(self._step_cost())
        kernel.gates.close(INSIDE_FIREWALL)
        # 4. Freeze the timer wheel (no jobs can be dispatched anyway, but
        #    pending deadlines must survive the downtime unchanged).
        yield kernel.sim.timeout(self._step_cost())
        kernel.timers.freeze()
        # 5. Stop time itself: shared-info page updates, TSC, xtime/jiffies.
        yield kernel.sim.timeout(self._step_cost())
        kernel.vclock.freeze()
        kernel.on_time_frozen()
        self.last_clock_frozen_at_ns = kernel.sim.now
        self.state = FirewallState.UP
        self.raises += 1
        self.last_freeze_window_ns = kernel.sim.now - start

    # -- lower ---------------------------------------------------------------------

    def lower_sequence(self) -> Generator:
        """Resume time and execution in reverse order."""
        if self.state != FirewallState.UP:
            raise FirewallViolation(
                f"cannot lower firewall in state {self.state.value}")
        kernel = self.kernel
        self.state = FirewallState.LOWERING
        start = kernel.sim.now
        # 5'. Restart time first so nothing executes under a frozen clock.
        kernel.on_time_thawed()
        kernel.vclock.thaw()
        self.last_clock_thawed_at_ns = kernel.sim.now
        yield kernel.sim.timeout(self._step_cost())
        # 3'. Re-open the dispatch gates *before* re-arming timers: a
        # deadline may already have expired (the clock re-base leaks a few
        # microseconds of downtime) and must be dispatchable immediately.
        kernel.gates.open(INSIDE_FIREWALL)
        yield kernel.sim.timeout(self._step_cost())
        # 4'. Re-arm the timer wheel against the resumed clock.
        kernel.timers.thaw()
        yield kernel.sim.timeout(self._step_cost())
        # 2'./1'. Restart kernel then user execution.
        kernel.resume_kernel_execution()
        yield kernel.sim.timeout(self._step_cost())
        kernel.resume_user_execution()
        self.state = FirewallState.DOWN
        self.last_thaw_window_ns = kernel.sim.now - start

"""Classes of guest-kernel activity and the firewall's dispatch gates.

The paper identifies the execution vehicles inside a Linux kernel — user
threads, kernel threads, interrupt handlers, deferrable functions (softirqs,
tasklets, workqueues), and timer jobs — and modifies the kernel's dispatch
points so each class can be selectively stopped.  We model the same set as
an enum plus a gate table; every dispatch funnels through
:meth:`GateTable.check`, which raises :class:`FirewallViolation` if a gated
class tries to run.  During a correct checkpoint that never happens (the
activity sources are already stopped); the exception exists so tests can
prove it.
"""

from __future__ import annotations

import enum

from repro.errors import FirewallViolation


class Activity(enum.Enum):
    """One class of guest execution."""

    USER_THREAD = "user-thread"
    KERNEL_THREAD = "kernel-thread"
    IRQ = "irq"
    BLOCK_IRQ = "block-irq"          # outside the firewall: drains in-flight I/O
    SOFTIRQ = "softirq"
    WORKQUEUE = "workqueue"
    TIMER = "timer"
    XENBUS = "xenbus"                # outside the firewall: checkpoint control
    EXCEPTION = "exception"          # page faults run outside the firewall


#: Activities the temporal firewall stops.  BLOCK_IRQ, XENBUS, and
#: EXCEPTION stay runnable — they are the checkpoint's own machinery (§4.1).
INSIDE_FIREWALL = frozenset({
    Activity.USER_THREAD, Activity.KERNEL_THREAD, Activity.IRQ,
    Activity.SOFTIRQ, Activity.WORKQUEUE, Activity.TIMER,
})


class GateTable:
    """Which activity classes are currently allowed to execute."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._closed: set[Activity] = set()
        self.violations = 0

    def close(self, activities: frozenset) -> None:
        """Gate the given classes (idempotent)."""
        self._closed |= set(activities)

    def open(self, activities: frozenset) -> None:
        """Re-open the given classes."""
        self._closed -= set(activities)

    def is_closed(self, activity: Activity) -> bool:
        return activity in self._closed

    def check(self, activity: Activity) -> None:
        """Assert that ``activity`` may run right now."""
        if activity in self._closed:
            self.violations += 1
            raise FirewallViolation(
                f"{activity.value} dispatched inside the temporal firewall "
                f"on {self.name}")

"""Guest threads: generator bodies scheduled by the guest kernel.

A thread body is a generator function taking the kernel and yielding events
produced by kernel services (``kernel.sleep``, ``kernel.cpu``, disk I/O,
TCP completion events).  Because every blocking primitive is freezable, a
raised temporal firewall stops all inside-firewall threads wherever they
are blocked, without per-thread bookkeeping — mirroring how the paper stops
threads by owning the ``schedule()`` function.
"""

from __future__ import annotations

import enum
from typing import Callable, Generator, Optional, TYPE_CHECKING

from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.kernel import GuestKernel


class ThreadKind(enum.Enum):
    USER = "user"
    KERNEL = "kernel"


class GuestThread:
    """One guest thread (user or kernel)."""

    def __init__(self, kernel: "GuestKernel", name: str,
                 body: Callable[["GuestKernel"], Generator],
                 kind: ThreadKind = ThreadKind.USER,
                 outside_firewall: bool = False) -> None:
        self.kernel = kernel
        self.name = name
        self.kind = kind
        self.outside_firewall = outside_firewall
        self.process: Process = kernel.sim.process(body(kernel))
        self.process.name = f"{kernel.name}.{name}"

    @property
    def alive(self) -> bool:
        return self.process.is_alive

    def join(self) -> Process:
        """The event that fires when the thread finishes."""
        return self.process

    def __repr__(self) -> str:
        where = "outside" if self.outside_firewall else "inside"
        return f"<GuestThread {self.name} ({self.kind.value}, {where} fw)>"

"""The guest kernel's virtual timer wheel.

All guest timers — POSIX timers, TCP retransmit timers, application sleeps —
are armed against the guest's :class:`~repro.guest.vclock.VirtualClock`.
When the temporal firewall freezes the wheel, pending timers keep their
*virtual* deadlines; after thaw they are re-armed relative to the resumed
clock.  A frozen timer can never fire — that is how checkpoint downtime
stays invisible to timeout-driven code.

The wheel also models dispatch slack: a small per-timer latency between the
nominal deadline and handler execution, standing in for timer-interrupt
granularity and softirq scheduling.  This slack is what bounds Figure 4's
baseline timer accuracy (97% of iterations within 28 µs).

Scheduling goes through the simulator's fast path: one
:class:`~repro.sim.core.ScheduledCall` per distinct fire instant (all
timers expiring at that instant share it, firing in arming order).  A
cancelled :class:`~repro.sim.timers.TimerHandle` is unhooked from its batch
immediately — and when the last timer of a batch is cancelled, or the wheel
freezes, the batch's heap entry is cancelled too, so cancel/rearm-heavy
workloads (TCP RTO storms) no longer grow the event heap until original
deadlines pass.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.errors import ClockError, SimulationError
from repro.guest.vclock import VirtualClock
from repro.sim.core import ScheduledCall, Simulator
from repro.sim.random import derived_rng
from repro.sim.timers import TimerHandle
from repro.units import US


class _TimerEntry:
    __slots__ = ("wheel", "vdeadline", "handle", "slack", "frozen_remaining",
                 "fire_at")

    def __init__(self, wheel: "VirtualTimerWheel", vdeadline: int,
                 handle: TimerHandle, slack: int) -> None:
        self.wheel = wheel
        self.vdeadline = vdeadline
        self.handle = handle
        self.slack = slack
        self.frozen_remaining = -1
        self.fire_at = -1                   # armed instant; -1 when unarmed

    def cancel(self) -> None:
        # Installed as the TimerHandle's underlying cancellable.
        self.wheel._cancel_entry(self)


class VirtualTimerWheel:
    """Freezable timers in guest virtual time (a TimerService)."""

    def __init__(self, sim: Simulator, vclock: VirtualClock,
                 rng: Optional[random.Random] = None,
                 max_slack_ns: int = 25 * US, name: str = "timers") -> None:
        self.sim = sim
        self.vclock = vclock
        self.rng = rng or derived_rng(f"timers.{name}")
        self.max_slack_ns = max_slack_ns
        self.name = name
        #: armed/held entries in arming order (dict-as-ordered-set: O(1)
        #: removal when a timer is cancelled or fires)
        self._pending: Dict[_TimerEntry, None] = {}
        #: entries grouped by absolute fire instant: all timers expiring at
        #: one simulation instant fire from a single scheduled event, in
        #: arming order — never from heap-tiebreak order between separate
        #: events (the event-race detector flags that as a hazard)
        self._due: Dict[int, List[_TimerEntry]] = {}
        #: the one ScheduledCall backing each fire instant's batch
        self._due_calls: Dict[int, ScheduledCall] = {}
        self._frozen = False
        self._version = 0

    # -- TimerService interface --------------------------------------------------

    def now(self) -> int:
        """Current guest virtual time."""
        return self.vclock.now()

    def call_in(self, delay_ns: int, fn: Callable[[], None]) -> TimerHandle:
        """Arm a timer ``delay_ns`` of *virtual* time from now."""
        if delay_ns < 0:
            raise SimulationError(f"negative timer delay {delay_ns}")
        handle = TimerHandle(fn)
        slack = self.rng.randint(0, self.max_slack_ns) \
            if self.max_slack_ns > 0 else 0
        entry = _TimerEntry(self, self.now() + delay_ns, handle, slack)
        handle._call = entry
        self._pending[entry] = None
        if not self._frozen:
            self._arm(entry)
        return handle

    # -- internals ------------------------------------------------------------------

    def _arm(self, entry: _TimerEntry) -> None:
        remaining = max(0, entry.vdeadline - self.vclock.now())
        fire_at = self.sim.now + remaining + entry.slack
        entry.fire_at = fire_at
        batch = self._due.get(fire_at)
        if batch is not None:
            batch.append(entry)             # an event for this instant exists
            return
        self._due[fire_at] = [entry]
        version = self._version

        def fire_batch() -> None:
            if version != self._version:
                return                      # wheel was frozen since arming
            self._due_calls.pop(fire_at, None)
            for due in self._due.pop(fire_at, ()):
                if version != self._version:
                    return                  # froze mid-batch; rest re-arm at thaw
                if due not in self._pending:
                    continue                # cancelled or already fired
                del self._pending[due]
                due.fire_at = -1
                due.handle._fire()

        self._due_calls[fire_at] = self.sim.schedule_call(fire_at, fire_batch)

    def _cancel_entry(self, entry: _TimerEntry) -> None:
        """Unhook a cancelled timer; reclaim its batch if it was the last."""
        self._pending.pop(entry, None)
        fire_at, entry.fire_at = entry.fire_at, -1
        if fire_at < 0:
            return                          # frozen or never armed
        batch = self._due.get(fire_at)
        if batch is None:
            return                          # batch is firing right now
        try:
            batch.remove(entry)
        except ValueError:
            return
        if not batch:
            del self._due[fire_at]
            call = self._due_calls.pop(fire_at, None)
            if call is not None:
                call.cancel()               # lazy-delete the heap entry

    # -- freeze protocol ----------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def pending_count(self) -> int:
        """Timers currently armed or held frozen."""
        for entry in [e for e in self._pending
                      if e.handle.cancelled or e.handle.fired]:
            del self._pending[entry]
        return len(self._pending)

    def freeze(self) -> None:
        """Hold all pending timers; nothing fires until :meth:`thaw`.

        Each timer's *remaining* delay is captured now — at resume the
        hardware timers are re-programmed with these remainders, so any
        error in re-basing the virtual clock shows up as timer skew, just
        like on the real system.
        """
        if self._frozen:
            raise ClockError(f"timer wheel {self.name} already frozen")
        self._frozen = True
        self._version += 1                  # disarm any batch mid-flight
        for call in self._due_calls.values():
            call.cancel()                   # reclaim the scheduled batches
        self._due.clear()
        self._due_calls.clear()
        now = self.vclock.now()
        for entry in self._pending:
            entry.fire_at = -1
            entry.frozen_remaining = max(0, entry.vdeadline - now)

    def thaw(self) -> None:
        """Re-arm pending timers with their captured remaining delays.

        The virtual clock must already be thawed, otherwise the re-armed
        deadlines would not correspond to any readable time.
        """
        if not self._frozen:
            raise ClockError(f"timer wheel {self.name} is not frozen")
        if self.vclock.frozen:
            raise ClockError("thaw the virtual clock before the timer wheel")
        self._frozen = False
        now = self.vclock.now()
        live = [e for e in self._pending
                if not e.handle.cancelled and not e.handle.fired]
        self._pending = dict.fromkeys(live)
        for entry in live:
            if entry.frozen_remaining >= 0:
                # Re-express the deadline against the re-based clock: the
                # stored remainder is authoritative (hardware semantics).
                entry.vdeadline = now + entry.frozen_remaining
                entry.frozen_remaining = -1
            self._arm(entry)

"""The guest kernel's virtual timer wheel.

All guest timers — POSIX timers, TCP retransmit timers, application sleeps —
are armed against the guest's :class:`~repro.guest.vclock.VirtualClock`.
When the temporal firewall freezes the wheel, pending timers keep their
*virtual* deadlines; after thaw they are re-armed relative to the resumed
clock.  A frozen timer can never fire — that is how checkpoint downtime
stays invisible to timeout-driven code.

The wheel also models dispatch slack: a small per-timer latency between the
nominal deadline and handler execution, standing in for timer-interrupt
granularity and softirq scheduling.  This slack is what bounds Figure 4's
baseline timer accuracy (97% of iterations within 28 µs).

Scheduling goes through the simulator's fast path: one
:class:`~repro.sim.core.ScheduledCall` per distinct fire instant (all
timers expiring at that instant share it, firing in arming order).  A
cancelled :class:`~repro.sim.timers.TimerHandle` is unhooked from its batch
immediately — and when the last timer of a batch is cancelled, or the wheel
freezes, the batch's heap entry is cancelled too, so cancel/rearm-heavy
workloads (TCP RTO storms) no longer grow the event heap until original
deadlines pass.

Timers may carry a **tag** — a stable string naming the callback for the
snapshot layer.  Callbacks are live closures and cannot be serialized;
:meth:`VirtualTimerWheel.serialize_state` records each pending timer's tag,
deadline, slack, and its batch's exact ``(when, priority, seq)`` event
triple, and :meth:`VirtualTimerWheel.restore_state` re-creates the timers
from a resolver mapping tags back to callbacks, re-inserting the batch
events verbatim (:meth:`~repro.sim.core.Simulator.restore_call`) so a
restored world's dispatch order is bit-identical to a replayed one.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.errors import CheckpointError, ClockError, SimulationError
from repro.guest.vclock import VirtualClock
from repro.sim.core import NORMAL, ScheduledCall, Simulator
from repro.sim.random import derived_rng
from repro.sim.timers import TimerHandle
from repro.units import US


class _TimerEntry:
    __slots__ = ("wheel", "vdeadline", "handle", "slack", "frozen_remaining",
                 "fire_at", "tag")

    def __init__(self, wheel: "VirtualTimerWheel", vdeadline: int,
                 handle: TimerHandle, slack: int,
                 tag: Optional[str] = None) -> None:
        self.wheel = wheel
        self.vdeadline = vdeadline
        self.handle = handle
        self.slack = slack
        self.frozen_remaining = -1
        self.fire_at = -1                   # armed instant; -1 when unarmed
        self.tag = tag

    def cancel(self) -> None:
        # Installed as the TimerHandle's underlying cancellable.
        self.wheel._cancel_entry(self)


class VirtualTimerWheel:
    """Freezable timers in guest virtual time (a TimerService)."""

    def __init__(self, sim: Simulator, vclock: VirtualClock,
                 rng: Optional[random.Random] = None,
                 max_slack_ns: int = 25 * US, name: str = "timers") -> None:
        self.sim = sim
        self.vclock = vclock
        self.rng = rng or derived_rng(f"timers.{name}")
        self.max_slack_ns = max_slack_ns
        self.name = name
        #: armed/held entries in arming order (dict-as-ordered-set: O(1)
        #: removal when a timer is cancelled or fires)
        self._pending: Dict[_TimerEntry, None] = {}
        #: entries grouped by absolute fire instant: all timers expiring at
        #: one simulation instant fire from a single scheduled event, in
        #: arming order — never from heap-tiebreak order between separate
        #: events (the event-race detector flags that as a hazard)
        self._due: Dict[int, List[_TimerEntry]] = {}
        #: the one ScheduledCall backing each fire instant's batch
        self._due_calls: Dict[int, ScheduledCall] = {}
        #: event-store sequence number of each batch's entry, recorded so
        #: a snapshot can re-insert the batch with its original triple
        self._due_seqs: Dict[int, int] = {}
        self._frozen = False
        self._version = 0

    # -- TimerService interface --------------------------------------------------

    def now(self) -> int:
        """Current guest virtual time."""
        return self.vclock.now()

    def call_in(self, delay_ns: int, fn: Callable[[], None],
                tag: Optional[str] = None) -> TimerHandle:
        """Arm a timer ``delay_ns`` of *virtual* time from now.

        ``tag`` (optional) names the callback for the snapshot layer: a
        wheel can only be serialized while every pending timer carries
        one, and a restore resolves tags back to callbacks.
        """
        if delay_ns < 0:
            raise SimulationError(f"negative timer delay {delay_ns}")
        handle = TimerHandle(fn)
        slack = self.rng.randint(0, self.max_slack_ns) \
            if self.max_slack_ns > 0 else 0
        entry = _TimerEntry(self, self.now() + delay_ns, handle, slack, tag)
        handle._call = entry
        self._pending[entry] = None
        if not self._frozen:
            self._arm(entry)
        return handle

    # -- internals ------------------------------------------------------------------

    def _make_fire_batch(self, fire_at: int) -> Callable[[], None]:
        version = self._version

        def fire_batch() -> None:
            if version != self._version:
                return                      # wheel was frozen since arming
            self._due_calls.pop(fire_at, None)
            self._due_seqs.pop(fire_at, None)
            for due in self._due.pop(fire_at, ()):
                if version != self._version:
                    return                  # froze mid-batch; rest re-arm at thaw
                if due not in self._pending:
                    continue                # cancelled or already fired
                del self._pending[due]
                due.fire_at = -1
                due.handle._fire()

        return fire_batch

    def _arm(self, entry: _TimerEntry) -> None:
        remaining = max(0, entry.vdeadline - self.vclock.now())
        fire_at = self.sim.now + remaining + entry.slack
        entry.fire_at = fire_at
        batch = self._due.get(fire_at)
        if batch is not None:
            batch.append(entry)             # an event for this instant exists
            return
        self._due[fire_at] = [entry]
        call, seq = self.sim.schedule_tracked(fire_at,
                                              self._make_fire_batch(fire_at))
        self._due_calls[fire_at] = call
        self._due_seqs[fire_at] = seq

    def _cancel_entry(self, entry: _TimerEntry) -> None:
        """Unhook a cancelled timer; reclaim its batch if it was the last."""
        self._pending.pop(entry, None)
        fire_at, entry.fire_at = entry.fire_at, -1
        if fire_at < 0:
            return                          # frozen or never armed
        batch = self._due.get(fire_at)
        if batch is None:
            return                          # batch is firing right now
        try:
            batch.remove(entry)
        except ValueError:
            return
        if not batch:
            del self._due[fire_at]
            self._due_seqs.pop(fire_at, None)
            call = self._due_calls.pop(fire_at, None)
            if call is not None:
                call.cancel()               # lazy-delete the heap entry

    # -- freeze protocol ----------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def pending_count(self) -> int:
        """Timers currently armed or held frozen."""
        for entry in [e for e in self._pending
                      if e.handle.cancelled or e.handle.fired]:
            del self._pending[entry]
        return len(self._pending)

    def freeze(self) -> None:
        """Hold all pending timers; nothing fires until :meth:`thaw`.

        Each timer's *remaining* delay is captured now — at resume the
        hardware timers are re-programmed with these remainders, so any
        error in re-basing the virtual clock shows up as timer skew, just
        like on the real system.
        """
        if self._frozen:
            raise ClockError(f"timer wheel {self.name} already frozen")
        self._frozen = True
        self._version += 1                  # disarm any batch mid-flight
        for call in self._due_calls.values():
            call.cancel()                   # reclaim the scheduled batches
        self._due.clear()
        self._due_calls.clear()
        self._due_seqs.clear()
        now = self.vclock.now()
        for entry in self._pending:
            entry.fire_at = -1
            entry.frozen_remaining = max(0, entry.vdeadline - now)

    def thaw(self) -> None:
        """Re-arm pending timers with their captured remaining delays.

        The virtual clock must already be thawed, otherwise the re-armed
        deadlines would not correspond to any readable time.
        """
        if not self._frozen:
            raise ClockError(f"timer wheel {self.name} is not frozen")
        if self.vclock.frozen:
            raise ClockError("thaw the virtual clock before the timer wheel")
        self._frozen = False
        now = self.vclock.now()
        live = [e for e in self._pending
                if not e.handle.cancelled and not e.handle.fired]
        self._pending = dict.fromkeys(live)
        for entry in live:
            if entry.frozen_remaining >= 0:
                # Re-express the deadline against the re-based clock: the
                # stored remainder is authoritative (hardware semantics).
                entry.vdeadline = now + entry.frozen_remaining
                entry.frozen_remaining = -1
            self._arm(entry)

    # -- snapshot/restore ----------------------------------------------------------

    def serialize_state(self) -> dict:
        """All pending timers plus the wheel's RNG position, JSON-safe.

        Every live pending timer must carry a tag — a callback without
        one cannot survive the serialize/restore boundary, and dropping
        it silently would violate the checkpoint-coverage contract, so
        that raises instead.  Armed batches record their exact event
        triple (``fire_at``, seq at NORMAL priority) for verbatim
        re-insertion.
        """
        from repro.sim.random import rng_state_to_json

        self.pending_count                  # prune cancelled/fired entries
        timers = []
        for entry in self._pending:
            if entry.tag is None:
                raise CheckpointError(
                    f"timer wheel {self.name}: pending timer without a "
                    f"tag cannot be serialized; arm it with "
                    f"call_in(..., tag=...)")
            timers.append({"tag": entry.tag, "vdeadline": entry.vdeadline,
                           "slack": entry.slack, "fire_at": entry.fire_at,
                           "frozen_remaining": entry.frozen_remaining})
        return {"name": self.name, "frozen": self._frozen,
                "max_slack_ns": self.max_slack_ns,
                "timers": timers,
                "batch_seqs": {str(fire_at): seq for fire_at, seq
                               in sorted(self._due_seqs.items())},
                "rng": rng_state_to_json(self.rng.getstate())}

    def restore_state(self, state: dict,
                      resolver: Callable[[str], Callable[[], None]]
                      ) -> Dict[str, TimerHandle]:
        """Rebuild pending timers from a :meth:`serialize_state` payload.

        The wheel must be empty (a freshly built world); ``resolver``
        maps each stored tag back to its callback.  Slack values are
        restored, never redrawn — the wheel's RNG position is restored
        too, so subsequent arms draw exactly what the snapshotted world
        would have drawn.  Returns the new handles by tag.
        """
        from repro.sim.random import rng_state_from_json

        expected = ("name", "frozen", "max_slack_ns", "timers",
                    "batch_seqs", "rng")
        if not isinstance(state, dict) or set(state) != set(expected):
            raise CheckpointError(
                f"timer wheel {self.name}: malformed payload")
        if state["name"] != self.name:
            raise CheckpointError(
                f"timer wheel {self.name}: payload belongs to "
                f"{state['name']!r}")
        if self.pending_count:
            raise CheckpointError(
                f"timer wheel {self.name}: restore requires an empty "
                f"wheel ({self.pending_count} timers pending)")
        self._frozen = bool(state["frozen"])
        self._version += 1
        self.rng.setstate(rng_state_from_json(state["rng"]))
        handles: Dict[str, TimerHandle] = {}
        for spec in state["timers"]:
            entry = _TimerEntry(self, spec["vdeadline"],
                                TimerHandle(resolver(spec["tag"])),
                                spec["slack"], spec["tag"])
            entry.handle._call = entry
            entry.frozen_remaining = spec["frozen_remaining"]
            entry.fire_at = spec["fire_at"] if not self._frozen else -1
            self._pending[entry] = None
            handles[spec["tag"]] = entry.handle
            if not self._frozen:
                self._due.setdefault(entry.fire_at, []).append(entry)
        for fire_at_str, seq in state["batch_seqs"].items():
            fire_at = int(fire_at_str)
            if fire_at not in self._due:
                raise CheckpointError(
                    f"timer wheel {self.name}: batch at {fire_at} has no "
                    f"timers in the payload")
            self._due_calls[fire_at] = self.sim.restore_call(
                fire_at, NORMAL, seq, self._make_fire_batch(fire_at))
            self._due_seqs[fire_at] = seq
        if not self._frozen and set(self._due) != \
                {int(k) for k in state["batch_seqs"]}:
            raise CheckpointError(
                f"timer wheel {self.name}: armed timers without a "
                f"recorded batch event")
        return handles

"""Physical units used throughout the simulator.

All simulated time is kept as **integer nanoseconds** so that event ordering
is exact and runs are reproducible bit-for-bit.  All data sizes are integer
bytes.  Link and disk rates are expressed in bits per second and bytes per
second respectively; the helpers below convert between them and time.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000
MINUTE: int = 60 * SECOND

NS = NANOSECOND
US = MICROSECOND
MS = MILLISECOND
SEC = SECOND


def seconds(t_ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return t_ns / SECOND


def from_seconds(t_s: float) -> int:
    """Convert float seconds to integer nanoseconds."""
    return round(t_s * SECOND)


def millis(t_ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds (for reporting)."""
    return t_ns / MILLISECOND


def micros(t_ns: int) -> float:
    """Convert integer nanoseconds to float microseconds (for reporting)."""
    return t_ns / MICROSECOND


# --- data ------------------------------------------------------------------

BYTE: int = 1
KB: int = 1_000
MB: int = 1_000_000
GB: int = 1_000_000_000
KIB: int = 1 << 10
MIB: int = 1 << 20
GIB: int = 1 << 30

# --- rates -----------------------------------------------------------------

BPS: int = 1          # bits per second
KBPS: int = 1_000
MBPS: int = 1_000_000
GBPS: int = 1_000_000_000


def transmission_time_ns(nbytes: int, rate_bps: int) -> int:
    """Time to clock ``nbytes`` onto a link running at ``rate_bps``.

    Rounds up to a whole nanosecond so that back-to-back packets never
    overlap on the wire.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    bits = nbytes * 8
    return -(-bits * SECOND // rate_bps)  # ceil division


def transfer_time_ns(nbytes: int, rate_bytes_per_s: int) -> int:
    """Time to move ``nbytes`` at a byte rate (disks, memcpy)."""
    if rate_bytes_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_bytes_per_s}")
    return -(-nbytes * SECOND // rate_bytes_per_s)


def bytes_in_time(t_ns: int, rate_bytes_per_s: int) -> int:
    """How many whole bytes move in ``t_ns`` at a byte rate."""
    return t_ns * rate_bytes_per_s // SECOND

"""Deterministic named random streams.

Every source of randomness in the simulator draws from a named substream of
one master seed.  Substream seeds are derived by hashing ``(master_seed,
name)`` with SHA-256, so adding a new consumer never perturbs the draws seen
by existing consumers — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List

from repro.errors import CheckpointError


def rng_state_to_json(state) -> List:
    """Encode ``random.Random.getstate()`` as a JSON-serializable list.

    The Mersenne Twister state is ``(version, tuple-of-ints, gauss_next)``
    — tuples become lists; everything else is already JSON-safe.
    """
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def rng_state_from_json(data) -> tuple:
    """Decode a list produced by :func:`rng_state_to_json`."""
    if not (isinstance(data, list) and len(data) == 3
            and isinstance(data[1], list)):
        raise CheckpointError(f"malformed RNG state: {type(data).__name__}")
    return (data[0], tuple(data[1]), data[2])


class RandomStreams:
    """A factory of independent, reproducible random number generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child stream factory (for nested components)."""
        digest = hashlib.sha256(
            f"{self.seed}:fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    # -- snapshot/restore ------------------------------------------------------

    def serialize_state(self) -> dict:
        """Every instantiated substream's exact generator position."""
        return {"seed": self.seed,
                "streams": {name: rng_state_to_json(rng.getstate())
                            for name, rng in sorted(self._streams.items())}}

    def restore_state(self, state: dict) -> None:
        """Re-position every substream from :meth:`serialize_state` output.

        Substreams the snapshot knows but this factory has not handed out
        yet are instantiated (so their next draw matches the snapshotted
        world's next draw); substreams handed out since the snapshot but
        absent from it are rewound to their derived-seed origin, exactly
        the state a replayed world would have before first use.
        """
        if not isinstance(state, dict) or set(state) != {"seed", "streams"}:
            raise CheckpointError("malformed RandomStreams payload")
        if state["seed"] != self.seed:
            raise CheckpointError(
                f"RandomStreams seed mismatch: snapshot {state['seed']}, "
                f"live {self.seed}")
        snapshot = state["streams"]
        for name in list(self._streams):
            if name not in snapshot:
                del self._streams[name]     # recreate lazily at derived seed
        for name, encoded in snapshot.items():
            self.stream(name).setstate(rng_state_from_json(encoded))


def derived_rng(name: str, seed: int = 0) -> random.Random:
    """A standalone deterministic RNG for one named consumer.

    The default-argument fallback for components constructed without an
    explicit stream (``rng = rng or derived_rng("pipe.ab")``).  Unlike the
    old ``random.Random(0)`` pattern, two differently named consumers never
    share a draw sequence, and the sequence for a given name is stable no
    matter how many other consumers exist.  Components wired by the testbed
    layer still receive explicit :class:`RandomStreams` substreams; this
    exists so hand-built components (tests, examples) stay deterministic
    too.  This module is the only place ``random.Random`` may be
    constructed (lint rule DET003).
    """
    return RandomStreams(seed).stream(name)

"""Deterministic named random streams.

Every source of randomness in the simulator draws from a named substream of
one master seed.  Substream seeds are derived by hashing ``(master_seed,
name)`` with SHA-256, so adding a new consumer never perturbs the draws seen
by existing consumers — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, reproducible random number generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child stream factory (for nested components)."""
        digest = hashlib.sha256(
            f"{self.seed}:fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


def derived_rng(name: str, seed: int = 0) -> random.Random:
    """A standalone deterministic RNG for one named consumer.

    The default-argument fallback for components constructed without an
    explicit stream (``rng = rng or derived_rng("pipe.ab")``).  Unlike the
    old ``random.Random(0)`` pattern, two differently named consumers never
    share a draw sequence, and the sequence for a given name is stable no
    matter how many other consumers exist.  Components wired by the testbed
    layer still receive explicit :class:`RandomStreams` substreams; this
    exists so hand-built components (tests, examples) stay deterministic
    too.  This module is the only place ``random.Random`` may be
    constructed (lint rule DET003).
    """
    return RandomStreams(seed).stream(name)

"""Lightweight structured tracing for simulation components.

Components call ``tracer.record(category, **fields)``; analyses filter the
records afterwards.  Tracing is optional everywhere — a ``None`` tracer is
accepted and ignored via :func:`maybe_record`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: int
    category: str
    fields: dict

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


@dataclass
class Tracer:
    """Accumulates :class:`TraceRecord` objects, optionally filtered."""

    clock: Callable[[], int]
    categories: Optional[set[str]] = None
    records: list = field(default_factory=list)

    def record(self, category: str, **fields: Any) -> None:
        """Append a record for ``category`` if it passes the filter."""
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(self.clock(), category, fields))

    def select(self, category: str) -> Iterator[TraceRecord]:
        """Iterate records of one category in time order."""
        return (r for r in self.records if r.category == category)

    def count(self, category: str) -> int:
        """Number of records in ``category``."""
        return sum(1 for r in self.records if r.category == category)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()


def maybe_record(tracer: Optional[Tracer], category: str, **fields: Any) -> None:
    """Record on ``tracer`` if it is not None."""
    if tracer is not None:
        tracer.record(category, **fields)

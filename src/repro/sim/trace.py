"""Compatibility shim: the tracer now lives in :mod:`repro.obs.trace`.

The original flat list tracer grew into the full observability layer
(:mod:`repro.obs`: spans, sinks, metrics, timeline export).  Existing
imports of ``repro.sim.trace`` keep working — everything here is a
re-export — but new code should import from :mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.trace import (NULL_SPAN, Span, SpanRecord, TraceRecord,
                             Tracer, maybe_record, verify_span_nesting)

__all__ = [
    "NULL_SPAN", "Span", "SpanRecord", "TraceRecord", "Tracer",
    "maybe_record", "verify_span_nesting",
]

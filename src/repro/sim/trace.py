"""Deprecated compatibility shim: the tracer lives in :mod:`repro.obs.trace`.

The original flat list tracer grew into the full observability layer
(:mod:`repro.obs`: spans, sinks, metrics, timeline export).  Importing
this module emits a :class:`DeprecationWarning`; everything here is a
re-export, so switching an import of ``repro.sim.trace`` to
``repro.obs.trace`` (or ``repro.obs``) is a pure rename.  No code in
this repository imports the shim any more — it survives one release
cycle for out-of-tree users only.
"""

from __future__ import annotations

import warnings

from repro.obs.trace import (NULL_SPAN, Span, SpanRecord, TraceRecord,
                             Tracer, maybe_record, verify_span_nesting)

warnings.warn(
    "repro.sim.trace is deprecated; import from repro.obs.trace "
    "(or repro.obs) instead",
    DeprecationWarning, stacklevel=2)

__all__ = [
    "NULL_SPAN", "Span", "SpanRecord", "TraceRecord", "Tracer",
    "maybe_record", "verify_span_nesting",
]

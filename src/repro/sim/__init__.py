"""Deterministic discrete-event simulation kernel."""

from repro.sim.core import (Event, ScheduledCall, Simulator, Timeout,
                            URGENT, NORMAL, LOW)
from repro.sim.process import Interrupt, Process
from repro.sim.primitives import AllOf, AnyOf, Condition
from repro.sim.resources import Container, Request, Resource, Store
from repro.sim.random import RandomStreams, derived_rng
from repro.obs.trace import TraceRecord, Tracer, maybe_record

__all__ = [
    "Event", "ScheduledCall", "Simulator", "Timeout", "URGENT", "NORMAL",
    "LOW",
    "Interrupt", "Process", "AllOf", "AnyOf", "Condition",
    "Container", "Request", "Resource", "Store",
    "RandomStreams", "derived_rng", "TraceRecord", "Tracer", "maybe_record",
]

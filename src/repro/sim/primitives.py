"""Composite events: wait for any/all of a set of events."""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class Condition(Event):
    """Base for events derived from a set of constituent events.

    The condition's value is a dict mapping each *triggered* constituent to
    its value at the moment the condition fired.
    """

    __slots__ = ("events", "_pending")

    def __init__(self, sim: Simulator, events: Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events
                if ev.triggered and ev.processed and ev._ok}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _child_failed(self, event: Event) -> None:
        event._defused = True
        if not self.triggered:
            self.fail(event._value)


class AnyOf(Condition):
    """Fires as soon as the first constituent fires (or fails)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self._child_failed(event)
            return
        self.succeed(self._collect())


class AllOf(Condition):
    """Fires when every constituent has fired; fails on the first failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            self._child_failed(event)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())

"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-heap design: :class:`Simulator` owns a binary
heap of ``(time, priority, sequence, item)`` entries and advances simulated
time by popping the earliest entry and running it.  Simulated time is
integer nanoseconds (see :mod:`repro.units`), and ties are broken by a
monotonically increasing sequence number, so a run is reproducible
bit-for-bit regardless of host platform.

Two kinds of item ride the heap:

* :class:`Event` (and subclasses) — the full-featured waitable object used
  by processes, with a value, callbacks, and failure propagation;
* the scheduling **fast path** — :meth:`Simulator.schedule_call` pushes a
  single slotted :class:`ScheduledCall` handle (cancellable), and
  :meth:`Simulator.schedule_fn` pushes the bare callable itself.  Neither
  allocates an Event, a callback list, or a wrapper lambda, which is what
  makes per-packet and per-timer scheduling cheap (see docs/performance.md).

Cancellation is *lazy*: a cancelled :class:`ScheduledCall` drops its
callback reference immediately and is skipped when popped; when tombstones
exceed half the heap the heap is compacted in one O(n) pass.  Pop order is
fully determined by the ``(time, priority, sequence)`` prefix, so compaction
(which only rearranges the backing array) can never change scheduling order.

Processes (generator coroutines that ``yield`` events) are layered on top in
:mod:`repro.sim.process`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

#: Scheduling priorities.  Lower runs first at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: it acquires a value (or an exception) and is scheduled on
    the simulator's heap.  When the simulator pops it, the event is
    *processed*: all registered callbacks run, in registration order.

    Callbacks receive the event itself as their only argument.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.processed = False
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the heap."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -----------------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0,
                priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: int = 0,
             priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises its exception inside every process waiting
        on it.  If nothing waits, the simulator raises at processing time so
        failures never pass silently; call :meth:`defuse` to suppress that.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay, priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if no process waits on it."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback fires immediately.
        """
        if self.processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback (no-op if absent).

        On a processed event the callback list is gone and there is nothing
        to remove; that case returns immediately instead of scanning.
        """
        cbs = self.callbacks
        if cbs is None:
            return                          # already processed
        try:
            cbs.remove(fn)                  # single O(n) pass, not two
        except ValueError:
            pass

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.processed = True
        for fn in callbacks or ():
            fn(self)
        if self._ok is False and not self._defused:
            raise self._value

    def __repr__(self) -> str:
        state = ("processed" if self.processed
                 else "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay, NORMAL)


class ScheduledCall:
    """A cancellable handle for one fast-path scheduled callback.

    The handle *is* the heap item: cancelling sets ``fn`` to ``None``
    (releasing the callback and anything it closes over immediately) and the
    simulator skips the tombstone when it reaches the top of the heap.  In
    legacy mode (``Simulator(fast_path=False)``) the handle instead guards a
    conventional :class:`Event`, reproducing the pre-fast-path fire-time
    tombstone semantics for A/B equivalence runs.
    """

    __slots__ = ("sim", "fn", "_direct")

    def __init__(self, sim: "Simulator", fn: Callable[[], None],
                 direct: bool = True) -> None:
        self.sim = sim
        self.fn: Optional[Callable[[], None]] = fn
        self._direct = direct

    @property
    def active(self) -> bool:
        """True while the callback is still pending (not fired, not
        cancelled)."""
        return self.fn is not None

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if fired/cancelled)."""
        if self.fn is None:
            return
        self.fn = None
        if self._direct:
            sim = self.sim
            sim._dead += 1
            if (sim._dead >= sim.COMPACT_MIN and
                    sim._dead * 2 > len(sim._heap)):
                sim._compact()

    def _event_fire(self, _event: "Event") -> None:
        # Legacy-mode trampoline: the Event fires, the handle decides.
        fn = self.fn
        if fn is not None:
            self.fn = None
            fn()

    def __repr__(self) -> str:
        state = "pending" if self.fn is not None else "done"
        return f"<ScheduledCall {state} at {hex(id(self))}>"


class Simulator:
    """The event loop: a clock plus a heap of scheduled events.

    ``fast_path`` and ``packet_trains`` exist so one binary can run the
    optimized and the legacy scheduling paths side by side (equivalence
    tests, `repro bench`); both default on and production code never turns
    them off.
    """

    #: lazy-deletion compaction knobs: compact when at least COMPACT_MIN
    #: tombstones exist *and* they outnumber live entries
    COMPACT_MIN = 64

    def __init__(self, *, fast_path: bool = True,
                 packet_trains: bool = True) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, int, Any]] = []
        self._seq = 0
        self._dead = 0                      # cancelled fast-path tombstones
        self._running = False
        #: scheduling fast path on (ScheduledCall heap items) or legacy
        #: (every scheduled callback wrapped in a full Event)
        self.fast_path = fast_path
        #: links/delay nodes coalesce back-to-back packets into trains
        self.packet_trains = packet_trains
        #: opt-in runtime determinism checker (see repro.lint.runtime);
        #: None means zero-overhead normal operation
        self.race_detector = None
        #: opt-in event-loop hot-spot profiler (see repro.obs.profile);
        #: None means zero-overhead normal operation
        self.profiler = None

    # -- event construction ---------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new process running ``generator`` (see sim.process)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def call_at(self, when: int, fn: Callable[[], None],
                priority: int = NORMAL) -> ScheduledCall:
        """Invoke ``fn()`` at absolute simulated time ``when``."""
        return self.schedule_call(when, fn, priority)

    def call_in(self, delay: int, fn: Callable[[], None],
                priority: int = NORMAL) -> ScheduledCall:
        """Invoke ``fn()`` after ``delay`` nanoseconds."""
        return self.schedule_call(self.now + delay, fn, priority)

    # -- the scheduling fast path ---------------------------------------------

    def schedule_call(self, when: int, fn: Callable[[], None],
                      priority: int = NORMAL) -> ScheduledCall:
        """Schedule ``fn()`` at absolute time ``when``; returns a handle.

        The fast path pushes one slotted :class:`ScheduledCall` — no Event,
        no callback list, no wrapper lambda.  ``handle.cancel()`` removes
        the entry lazily (skipped at pop, compacted when tombstones exceed
        half the heap).
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self.now}")
        if self.fast_path:
            self._seq += 1
            handle = ScheduledCall(self, fn)
            heapq.heappush(self._heap, (when, priority, self._seq, handle))
            return handle
        # Legacy path, reproducing the pre-fast-path implementation: a
        # Timeout event plus a wrapper lambda per scheduled callback;
        # cancelled entries stay on the heap until their deadline
        # (fire-time check).  Seq consumption matches the fast path — one
        # per call, via Timeout's _enqueue — so both modes tie-break
        # identically.
        handle = ScheduledCall(self, fn, direct=False)
        ev = self._legacy_event(when, priority)
        ev.callbacks.append(lambda _e: handle._event_fire(_e))
        return handle

    def schedule_fn(self, when: int, fn: Callable[[], None],
                    priority: int = NORMAL) -> None:
        """Fire-and-forget fast path: pushes the bare callable itself.

        Zero per-call allocation beyond the heap entry; there is no handle,
        so the call cannot be cancelled.  Reuse one prebound callable to
        schedule the same work repeatedly (packet trains do this).
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self.now}")
        if self.fast_path:
            self._seq += 1
            heapq.heappush(self._heap, (when, priority, self._seq, fn))
            return
        ev = self._legacy_event(when, priority)
        ev.callbacks.append(lambda _e: fn())

    def _legacy_event(self, when: int, priority: int) -> Event:
        """One pre-fast-path scheduled Event (Timeout at NORMAL priority)."""
        if priority == NORMAL:
            return Timeout(self, when - self.now)
        ev = Event(self)
        ev._ok = True
        ev._value = None
        self._enqueue(ev, when - self.now, priority)
        return ev

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify (O(n), amortized O(1)).

        Rearranging the backing array cannot change pop order: the
        ``(time, priority, sequence)`` prefix is a total order.  The sweep
        mutates the list in place — run loops hold a reference to it.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap
                   if not (entry[3].__class__ is ScheduledCall and
                           entry[3].fn is None)]
        heapq.heapify(heap)
        self._dead = 0

    # -- scheduling internals ------------------------------------------------

    def _enqueue(self, event: Event, delay: int, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    # -- execution ------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next *live* scheduled event, or None if idle."""
        heap = self._heap
        while heap:
            item = heap[0][3]
            if item.__class__ is ScheduledCall and item.fn is None:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            return heap[0][0]
        return None

    def step(self) -> None:
        """Process the next live event (skipping cancelled tombstones)."""
        heap = self._heap
        while heap:
            when, prio, seq, item = heapq.heappop(heap)
            if item.__class__ is ScheduledCall:
                fn = item.fn
                if fn is None:
                    self._dead -= 1
                    continue                # tombstone: skip, keep popping
                item.fn = None              # mark fired, release the closure
                if when < self.now:
                    raise SimulationError(
                        "event heap corrupted: time went backwards")
                self.now = when
                if self.race_detector is not None:
                    self.race_detector.observe(when, prio, seq, fn)
                if self.profiler is not None:
                    t0 = self.profiler.begin()
                    fn()
                    self.profiler.end(t0, fn)
                    return
                fn()
                return
            if when < self.now:
                raise SimulationError(
                    "event heap corrupted: time went backwards")
            self.now = when
            if self.race_detector is not None:
                self.race_detector.observe(when, prio, seq, item)
            if self.profiler is not None:
                t0 = self.profiler.begin()
                if isinstance(item, Event):
                    item._process()
                else:
                    item()
                self.profiler.end(t0, item)
                return
            if isinstance(item, Event):
                item._process()
            else:
                item()                      # bare fast-path callable
            return

    def enable_race_detection(self):
        """Attach an event-race detector; returns it for later inspection.

        Opt-in: detection watches every popped event for same-timestamp
        ties whose callbacks touch a shared component (a latent ordering
        hazard).  See :class:`repro.lint.runtime.EventRaceDetector`.
        """
        from repro.lint.runtime import EventRaceDetector

        self.race_detector = EventRaceDetector(sim=self)
        return self.race_detector

    def enable_profiling(self):
        """Attach an event-loop profiler; returns it for later inspection.

        Opt-in: the profiler brackets every dispatched callback with host
        wall-clock reads to attribute real time to callables by module
        and qualified name.  It observes host time only — it never reads
        or advances simulated time — so traces and digests are unchanged.
        See :class:`repro.obs.profile.LoopProfiler`.
        """
        from repro.obs.profile import LoopProfiler

        self.profiler = LoopProfiler()
        return self.profiler

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the heap drains), an integer
        absolute time in nanoseconds (run up to and including that instant),
        or an :class:`Event` (run until it is processed; its value is
        returned).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if isinstance(until, Event):
                stop = until
                if stop.processed:
                    return stop.value if stop.ok else None
                done = []
                stop.add_callback(done.append)
                while self._heap and not done:
                    self.step()
                if not done:
                    raise SimulationError(
                        "simulation ran out of events before target event")
                if not stop.ok:
                    if not stop._defused:
                        raise stop.value
                    return None
                return stop.value
            if until is None:
                while self._heap:
                    self.step()
                return None
            horizon = int(until)
            if horizon < self.now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self.now})")
            # The horizon check must see the next *live* event's timestamp:
            # a cancelled tombstone below the horizon must not let the loop
            # step into a live event beyond it.  (Inline head purge rather
            # than peek()-per-step — this is the hottest loop in the tree.)
            heap = self._heap
            while heap:
                head = heap[0]
                item = head[3]
                if item.__class__ is ScheduledCall and item.fn is None:
                    heapq.heappop(heap)
                    self._dead -= 1
                    continue
                if head[0] > horizon:
                    break
                self.step()
            self.now = horizon
            return None
        finally:
            self._running = False

    # -- conveniences ----------------------------------------------------------

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.primitives import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.primitives import AllOf

        return AllOf(self, list(events))

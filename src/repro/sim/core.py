"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-heap design: :class:`Simulator` owns a binary
heap of ``(time, priority, sequence, Event)`` entries and advances simulated
time by popping the earliest entry and running its callbacks.  Simulated time
is integer nanoseconds (see :mod:`repro.units`), and ties are broken by a
monotonically increasing sequence number, so a run is reproducible
bit-for-bit regardless of host platform.

Processes (generator coroutines that ``yield`` events) are layered on top in
:mod:`repro.sim.process`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

#: Scheduling priorities.  Lower runs first at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: it acquires a value (or an exception) and is scheduled on
    the simulator's heap.  When the simulator pops it, the event is
    *processed*: all registered callbacks run, in registration order.

    Callbacks receive the event itself as their only argument.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.processed = False
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the heap."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -----------------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0,
                priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: int = 0,
             priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises its exception inside every process waiting
        on it.  If nothing waits, the simulator raises at processing time so
        failures never pass silently; call :meth:`defuse` to suppress that.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay, priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if no process waits on it."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback fires immediately.
        """
        if self.processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        if self.callbacks and fn in self.callbacks:
            self.callbacks.remove(fn)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.processed = True
        for fn in callbacks or ():
            fn(self)
        if self._ok is False and not self._defused:
            raise self._value

    def __repr__(self) -> str:
        state = ("processed" if self.processed
                 else "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay, NORMAL)


class Simulator:
    """The event loop: a clock plus a heap of scheduled events."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, int, Event]] = []
        self._seq = 0
        self._running = False
        #: opt-in runtime determinism checker (see repro.lint.runtime);
        #: None means zero-overhead normal operation
        self.race_detector = None

    # -- event construction ---------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new process running ``generator`` (see sim.process)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def call_at(self, when: int, fn: Callable[[], None],
                priority: int = NORMAL) -> Event:
        """Invoke ``fn()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self.now}")
        return self.call_in(when - self.now, fn, priority)

    def call_in(self, delay: int, fn: Callable[[], None],
                priority: int = NORMAL) -> Event:
        """Invoke ``fn()`` after ``delay`` nanoseconds."""
        ev = Timeout(self, delay)
        ev.callbacks.append(lambda _e: fn())
        return ev

    # -- scheduling internals ------------------------------------------------

    def _enqueue(self, event: Event, delay: int, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    # -- execution ------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next scheduled event, or None if idle."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Process exactly one event."""
        when, prio, seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event heap corrupted: time went backwards")
        self.now = when
        if self.race_detector is not None:
            self.race_detector.observe(when, prio, seq, event)
        event._process()

    def enable_race_detection(self):
        """Attach an event-race detector; returns it for later inspection.

        Opt-in: detection watches every popped event for same-timestamp
        ties whose callbacks touch a shared component (a latent ordering
        hazard).  See :class:`repro.lint.runtime.EventRaceDetector`.
        """
        from repro.lint.runtime import EventRaceDetector

        self.race_detector = EventRaceDetector()
        return self.race_detector

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the heap drains), an integer
        absolute time in nanoseconds (run up to and including that instant),
        or an :class:`Event` (run until it is processed; its value is
        returned).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if isinstance(until, Event):
                stop = until
                if stop.processed:
                    return stop.value if stop.ok else None
                done = []
                stop.add_callback(done.append)
                while self._heap and not done:
                    self.step()
                if not done:
                    raise SimulationError(
                        "simulation ran out of events before target event")
                if not stop.ok:
                    if not stop._defused:
                        raise stop.value
                    return None
                return stop.value
            if until is None:
                while self._heap:
                    self.step()
                return None
            horizon = int(until)
            if horizon < self.now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self.now})")
            while self._heap and self._heap[0][0] <= horizon:
                self.step()
            self.now = horizon
            return None
        finally:
            self._running = False

    # -- conveniences ----------------------------------------------------------

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.primitives import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.primitives import AllOf

        return AllOf(self, list(events))

"""Deterministic discrete-event simulation kernel.

The kernel orders work by ``(time, priority, sequence)``: simulated time is
integer nanoseconds (see :mod:`repro.units`), and ties are broken by a
monotonically increasing sequence number, so a run is reproducible
bit-for-bit regardless of host platform.

Storage is a **two-lane event store** (profile-guided; see
docs/performance.md for the measurements that chose this layout over both
``heapq`` tuples alone and a hand-rolled sift-up/sift-down array heap):

* the **tail lane** — a plain deque of ``(when, priority, seq, item)``
  entries kept sorted by construction.  Most scheduling in a discrete-event
  simulation is *monotone*: a callback running at time ``t`` schedules its
  successor at ``t + delta``, which lands at or past everything already
  pending.  Such entries append in O(1) with two integer comparisons and
  pop from the head in O(1) — no sifting, no per-entry log(n).
* the **heap lane** — a classic binary heap (C ``heapq``) that absorbs the
  out-of-order remainder: timers armed into the far future while nearer
  work is pending, retransmission deadlines, URGENT-priority kicks.

Dispatch merges the lanes by comparing their heads; because both lanes are
min-ordered and every entry carries the full ``(when, priority, seq)``
prefix, the merged pop order is exactly the order a single heap would
produce.  The run loop itself is inlined (no per-event ``step()`` call)
whenever no race detector or profiler is attached.

Two kinds of item ride the store:

* :class:`Event` (and subclasses) — the full-featured waitable object used
  by processes, with a value, callbacks, and failure propagation; events
  are callable (dispatch invokes ``event()``) so the hot loop never needs
  an ``isinstance`` check;
* the scheduling **fast path** — :meth:`Simulator.schedule_call` pushes a
  single slotted :class:`ScheduledCall` handle (cancellable), and
  :meth:`Simulator.schedule_fn` pushes the bare callable itself.  Neither
  allocates an Event, a callback list, or a wrapper lambda, which is what
  makes per-packet and per-timer scheduling cheap (see docs/performance.md).

Cancellation is *lazy*: a cancelled :class:`ScheduledCall` drops its
callback reference immediately and is skipped when popped (O(1), no
per-entry handle bookkeeping); when tombstones exceed half the live store
both lanes are compacted in one O(n) pass.  Pop order is fully determined
by the ``(time, priority, sequence)`` prefix, so compaction (which only
rearranges backing storage) can never change scheduling order.

Processes (generator coroutines that ``yield`` events) are layered on top in
:mod:`repro.sim.process`.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

#: Scheduling priorities.  Lower runs first at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: it acquires a value (or an exception) and is scheduled on
    the simulator's event store.  When the simulator pops it, the event is
    *processed*: all registered callbacks run, in registration order.

    Callbacks receive the event itself as their only argument.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.processed = False
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the event store."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -----------------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0,
                priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: int = 0,
             priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises its exception inside every process waiting
        on it.  If nothing waits, the simulator raises at processing time so
        failures never pass silently; call :meth:`defuse` to suppress that.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay, priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if no process waits on it."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback fires immediately.
        """
        if self.processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback (no-op if absent).

        On a processed event the callback list is gone and there is nothing
        to remove; that case returns immediately instead of scanning.  The
        same applies *during* dispatch of this event: ``_process`` detaches
        the list before running it, so removal from inside one of the
        event's own callbacks is a no-op — the remaining callbacks still
        fire (see tests/test_sim_heap_edges.py, which pins this contract).
        """
        cbs = self.callbacks
        if cbs is None:
            return                          # already processed
        try:
            cbs.remove(fn)                  # single O(n) pass, not two
        except ValueError:
            pass

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.processed = True
        for fn in callbacks or ():
            fn(self)
        if self._ok is False and not self._defused:
            raise self._value

    def __call__(self) -> None:
        # Events are callable so the dispatch loop can invoke any non-handle
        # item uniformly, without an isinstance check on the hot path.
        # Defined as a real method (not an alias) so subclasses overriding
        # _process stay correct.
        self._process()

    def __repr__(self) -> str:
        state = ("processed" if self.processed
                 else "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay, NORMAL)


class ScheduledCall:
    """A cancellable handle for one fast-path scheduled callback.

    The handle *is* the stored item: cancelling sets ``fn`` to ``None``
    (releasing the callback and anything it closes over immediately) and the
    simulator skips the tombstone when it reaches the head of its lane.  In
    legacy mode (``Simulator(fast_path=False)``) the handle instead guards a
    conventional :class:`Event`, reproducing the pre-fast-path fire-time
    tombstone semantics for A/B equivalence runs.
    """

    __slots__ = ("sim", "fn", "_direct")

    def __init__(self, sim: "Simulator", fn: Callable[[], None],
                 direct: bool = True) -> None:
        self.sim = sim
        self.fn: Optional[Callable[[], None]] = fn
        self._direct = direct

    @property
    def active(self) -> bool:
        """True while the callback is still pending (not fired, not
        cancelled)."""
        return self.fn is not None

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if fired/cancelled)."""
        if self.fn is None:
            return
        self.fn = None
        if self._direct:
            sim = self.sim
            sim._dead += 1
            if (sim._dead >= sim.COMPACT_MIN and
                    sim._dead * 2 > len(sim._heap) + len(sim._tail)):
                sim._compact()

    def _event_fire(self, _event: "Event") -> None:
        # Legacy-mode trampoline: the Event fires, the handle decides.
        fn = self.fn
        if fn is not None:
            self.fn = None
            fn()

    def __repr__(self) -> str:
        state = "pending" if self.fn is not None else "done"
        return f"<ScheduledCall {state} at {hex(id(self))}>"


class Simulator:
    """The event loop: a clock plus the two-lane store of scheduled events.

    ``fast_path``, ``packet_trains`` and ``batch_pipes`` exist so one binary
    can run the optimized and the legacy scheduling paths side by side
    (equivalence tests, `repro bench`); all default on and production code
    never turns them off.
    """

    #: lazy-deletion compaction knobs: compact when at least COMPACT_MIN
    #: tombstones exist *and* they outnumber live entries
    COMPACT_MIN = 64

    __slots__ = ("now", "_heap", "_tail", "_seq", "_dead", "_running",
                 "fast_path", "packet_trains", "batch_pipes",
                 "race_detector", "profiler")

    def __init__(self, *, fast_path: bool = True,
                 packet_trains: bool = True,
                 batch_pipes: bool = True) -> None:
        self.now: int = 0
        #: heap lane: out-of-order entries, C-heapq ordered
        self._heap: list[tuple[int, int, int, Any]] = []
        #: tail lane: monotone entries, sorted by construction
        self._tail: deque = deque()
        self._seq = 0
        self._dead = 0                      # cancelled fast-path tombstones
        self._running = False
        #: scheduling fast path on (ScheduledCall heap items) or legacy
        #: (every scheduled callback wrapped in a full Event)
        self.fast_path = fast_path
        #: links/delay nodes coalesce back-to-back packets into trains
        self.packet_trains = packet_trains
        #: Dummynet pipes keep one merged advance call per pipe and drain
        #: same-instant runs inline (see repro.net.dummynet)
        self.batch_pipes = batch_pipes
        #: opt-in runtime determinism checker (see repro.lint.runtime);
        #: None means zero-overhead normal operation.  Attach *before*
        #: calling run(): the run loop is specialized per run() call.
        self.race_detector = None
        #: opt-in event-loop hot-spot profiler (see repro.obs.profile);
        #: None means zero-overhead normal operation.  Attach before run().
        self.profiler = None

    # -- event construction ---------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new process running ``generator`` (see sim.process)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def call_at(self, when: int, fn: Callable[[], None],
                priority: int = NORMAL) -> ScheduledCall:
        """Invoke ``fn()`` at absolute simulated time ``when``."""
        return self.schedule_call(when, fn, priority)

    def call_in(self, delay: int, fn: Callable[[], None],
                priority: int = NORMAL) -> ScheduledCall:
        """Invoke ``fn()`` after ``delay`` nanoseconds."""
        return self.schedule_call(self.now + delay, fn, priority)

    # -- the scheduling fast path ---------------------------------------------

    def schedule_call(self, when: int, fn: Callable[[], None],
                      priority: int = NORMAL) -> ScheduledCall:
        """Schedule ``fn()`` at absolute time ``when``; returns a handle.

        The fast path pushes one slotted :class:`ScheduledCall` — no Event,
        no callback list, no wrapper lambda.  ``handle.cancel()`` removes
        the entry lazily (skipped at pop, compacted past the threshold).
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self.now}")
        if self.fast_path:
            self._seq = seq = self._seq + 1
            handle = ScheduledCall(self, fn)
            tail = self._tail
            if tail:
                last = tail[-1]
                lw = last[0]
                if when > lw or (when == lw and priority >= last[1]):
                    tail.append((when, priority, seq, handle))
                else:
                    heappush(self._heap, (when, priority, seq, handle))
            else:
                tail.append((when, priority, seq, handle))
            return handle
        # Legacy path, reproducing the pre-fast-path implementation: a
        # Timeout event plus a wrapper lambda per scheduled callback;
        # cancelled entries stay on the heap until their deadline
        # (fire-time check).  Seq consumption matches the fast path — one
        # per call, via Timeout's _enqueue — so both modes tie-break
        # identically.
        handle = ScheduledCall(self, fn, direct=False)
        ev = self._legacy_event(when, priority)
        ev.callbacks.append(lambda _e: handle._event_fire(_e))
        return handle

    def schedule_tracked(self, when: int, fn: Callable[[], None],
                         priority: int = NORMAL
                         ) -> "tuple[ScheduledCall, int]":
        """Schedule ``fn()`` and also return the entry's sequence number.

        The ``(when, priority, seq)`` triple fully determines this
        entry's position in the pop order, so a snapshot layer that
        records the triple can re-insert the pending call *verbatim* in a
        restored world (:meth:`restore_call`) — tie-breaking then matches
        a from-origin replay bit for bit.  Sequence numbers are consumed
        identically on the fast and legacy paths, so the returned seq is
        the entry's seq in both modes.
        """
        handle = self.schedule_call(when, fn, priority)
        return handle, self._seq

    def schedule_fn(self, when: int, fn: Callable[[], None],
                    priority: int = NORMAL) -> None:
        """Fire-and-forget fast path: pushes the bare callable itself.

        Zero per-call allocation beyond the stored entry; there is no
        handle, so the call cannot be cancelled.  Reuse one prebound
        callable to schedule the same work repeatedly (packet trains do).
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self.now}")
        if self.fast_path:
            self._seq = seq = self._seq + 1
            tail = self._tail
            if tail:
                last = tail[-1]
                lw = last[0]
                if when > lw or (when == lw and priority >= last[1]):
                    tail.append((when, priority, seq, fn))
                else:
                    heappush(self._heap, (when, priority, seq, fn))
            else:
                tail.append((when, priority, seq, fn))
            return
        ev = self._legacy_event(when, priority)
        ev.callbacks.append(lambda _e: fn())

    def _legacy_event(self, when: int, priority: int) -> Event:
        """One pre-fast-path scheduled Event (Timeout at NORMAL priority)."""
        if priority == NORMAL:
            return Timeout(self, when - self.now)
        ev = Event(self)
        ev._ok = True
        ev._value = None
        self._enqueue(ev, when - self.now, priority)
        return ev

    def _compact(self) -> None:
        """Drop cancelled tombstones from both lanes (O(n), amortized O(1)).

        Rearranging backing storage cannot change pop order: the
        ``(time, priority, sequence)`` prefix is a total order.  Both
        sweeps mutate their containers in place — run loops hold
        references to them.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap
                   if not (entry[3].__class__ is ScheduledCall and
                           entry[3].fn is None)]
        heapq.heapify(heap)
        tail = self._tail
        live = [entry for entry in tail
                if not (entry[3].__class__ is ScheduledCall and
                        entry[3].fn is None)]
        if len(live) != len(tail):
            tail.clear()
            tail.extend(live)               # order preserved: still sorted
        self._dead = 0

    # -- scheduling internals ------------------------------------------------

    def _enqueue(self, event: Event, delay: int, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        when = self.now + delay
        tail = self._tail
        if tail:
            last = tail[-1]
            lw = last[0]
            if when > lw or (when == lw and priority >= last[1]):
                tail.append((when, priority, seq, event))
            else:
                heappush(self._heap, (when, priority, seq, event))
        else:
            tail.append((when, priority, seq, event))

    @property
    def pending_count(self) -> int:
        """Entries currently stored, cancelled tombstones included."""
        return len(self._heap) + len(self._tail)

    # -- snapshot/restore of the event frontier --------------------------------

    def frontier_state(self) -> "dict[str, int]":
        """The clock and sequence counter, for snapshot manifests.

        The *entries* of the frontier are not serialized here — callables
        cannot be; each component that owns a pending call records its
        own ``(when, priority, seq)`` triple (via :meth:`schedule_tracked`)
        and re-inserts it at restore with :meth:`restore_call`.
        """
        return {"now": self.now, "seq": self._seq}

    def restore_frontier(self, now: int, seq: int) -> None:
        """Reset the store to a snapshot's clock and sequence counter.

        Clears both lanes (a freshly built world may hold constructor
        scheduling that the snapshot instant has already consumed); the
        owning components then re-insert their live entries with
        :meth:`restore_call`.  Events scheduled *after* the restore draw
        sequence numbers continuing from ``seq``, so tie-breaking of new
        work matches a replayed world exactly.
        """
        if self._running:
            raise SimulationError("cannot restore a running simulator")
        if now < 0 or seq < 0:
            raise SimulationError(
                f"invalid frontier (now={now}, seq={seq})")
        self._heap.clear()
        self._tail.clear()
        self._dead = 0
        self.now = now
        self._seq = seq

    def restore_call(self, when: int, priority: int, seq: int,
                     fn: Callable[[], None]) -> ScheduledCall:
        """Re-insert one pending call with its *original* ordering triple.

        Used only by restore paths: the triple must have been recorded at
        arming time in the snapshotted world (see :meth:`schedule_tracked`),
        and :meth:`restore_frontier` must already have set the sequence
        counter at or past ``seq``.  The entry goes to the heap lane —
        out-of-order inserts are exactly what that lane absorbs — and the
        counter is *not* advanced, so subsequently scheduled events keep
        their replay-identical numbering.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot restore a call at {when} before now={self.now}")
        if seq > self._seq:
            raise SimulationError(
                f"restored seq {seq} is ahead of the frontier counter "
                f"{self._seq}; restore_frontier first")
        handle = ScheduledCall(self, fn)
        heappush(self._heap, (when, priority, seq, handle))
        return handle

    # -- execution ------------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next *live* scheduled event, or None if idle."""
        heap = self._heap
        tail = self._tail
        while True:
            if heap:
                if tail and tail[0] < heap[0]:
                    entry, in_tail = tail[0], True
                else:
                    entry, in_tail = heap[0], False
            elif tail:
                entry, in_tail = tail[0], True
            else:
                return None
            item = entry[3]
            if item.__class__ is ScheduledCall and item.fn is None:
                if in_tail:
                    tail.popleft()
                else:
                    heappop(heap)
                self._dead -= 1
                continue
            return entry[0]

    def _pop_next(self):
        """Pop the globally earliest entry, or None if the store is empty."""
        heap = self._heap
        tail = self._tail
        if heap:
            if tail and tail[0] < heap[0]:
                return tail.popleft()
            return heappop(heap)
        if tail:
            return tail.popleft()
        return None

    def step(self) -> None:
        """Process the next live event (skipping cancelled tombstones).

        This is the generic, instrumented dispatch: the race detector and
        profiler hooks live here.  Uninstrumented ``run()`` calls use the
        inlined loops below instead.
        """
        while True:
            entry = self._pop_next()
            if entry is None:
                return
            when, prio, seq, item = entry
            if item.__class__ is ScheduledCall:
                fn = item.fn
                if fn is None:
                    self._dead -= 1
                    continue                # tombstone: skip, keep popping
                item.fn = None              # mark fired, release the closure
                if when < self.now:
                    raise SimulationError(
                        "event heap corrupted: time went backwards")
                self.now = when
                if self.race_detector is not None:
                    self.race_detector.observe(when, prio, seq, fn)
                if self.profiler is not None:
                    t0 = self.profiler.begin()
                    fn()
                    self.profiler.end(t0, fn)
                    return
                fn()
                return
            if when < self.now:
                raise SimulationError(
                    "event heap corrupted: time went backwards")
            self.now = when
            if self.race_detector is not None:
                self.race_detector.observe(when, prio, seq, item)
            if self.profiler is not None:
                t0 = self.profiler.begin()
                item()
                self.profiler.end(t0, item)
                return
            item()                          # Event or bare fast-path callable
            return

    def enable_race_detection(self):
        """Attach an event-race detector; returns it for later inspection.

        Opt-in: detection watches every popped event for same-timestamp
        ties whose callbacks touch a shared component (a latent ordering
        hazard).  Attach before calling :meth:`run` — the run loop checks
        for instrumentation once per run() call, not per event.
        See :class:`repro.lint.runtime.EventRaceDetector`.
        """
        from repro.lint.runtime import EventRaceDetector

        self.race_detector = EventRaceDetector(sim=self)
        return self.race_detector

    def enable_profiling(self):
        """Attach an event-loop profiler; returns it for later inspection.

        Opt-in: the profiler brackets every dispatched callback with host
        wall-clock reads to attribute real time to callables by module
        and qualified name.  It observes host time only — it never reads
        or advances simulated time — so traces and digests are unchanged.
        Attach before calling :meth:`run` (same contract as the race
        detector).  See :class:`repro.obs.profile.LoopProfiler`.
        """
        from repro.obs.profile import LoopProfiler

        self.profiler = LoopProfiler()
        return self.profiler

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the store drains), an integer
        absolute time in nanoseconds (run up to and including that instant),
        or an :class:`Event` (run until it is processed; its value is
        returned).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if self.race_detector is not None or self.profiler is not None:
                return self._run_instrumented(until)

            # The three loops below are the hottest code in the tree; they
            # are specialized per `until` kind and deliberately duplicate
            # the dispatch snippet instead of calling step() per event.
            heap = self._heap
            tail = self._tail
            pop_tail = tail.popleft
            SC = ScheduledCall

            if isinstance(until, Event):
                stop = until
                if stop.processed:
                    return stop.value if stop.ok else None
                done: list = []
                stop.add_callback(done.append)
                while not done:
                    if heap:
                        if tail and tail[0] < heap[0]:
                            entry = pop_tail()
                        else:
                            entry = heappop(heap)
                    elif tail:
                        entry = pop_tail()
                    else:
                        raise SimulationError(
                            "simulation ran out of events before target "
                            "event")
                    item = entry[3]
                    if item.__class__ is SC:
                        fn = item.fn
                        if fn is None:
                            self._dead -= 1
                            continue
                        item.fn = None
                        self.now = entry[0]
                        fn()
                    else:
                        self.now = entry[0]
                        item()
                if not stop.ok:
                    if not stop._defused:
                        raise stop.value
                    return None
                return stop.value

            if until is None:
                while True:
                    if heap:
                        if tail and tail[0] < heap[0]:
                            entry = pop_tail()
                        else:
                            entry = heappop(heap)
                    elif tail:
                        entry = pop_tail()
                    else:
                        return None
                    item = entry[3]
                    if item.__class__ is SC:
                        fn = item.fn
                        if fn is None:
                            self._dead -= 1
                            continue
                        item.fn = None
                        self.now = entry[0]
                        fn()
                    else:
                        self.now = entry[0]
                        item()

            horizon = int(until)
            if horizon < self.now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self.now})")
            # Tombstones below the horizon are skipped without advancing
            # the clock, so a cancelled entry can never drag the loop into
            # a live event beyond the horizon.  The one entry popped past
            # the horizon is pushed back (at most once per run() call).
            while True:
                if heap:
                    if tail and tail[0] < heap[0]:
                        entry = pop_tail()
                        from_tail = True
                    else:
                        entry = heappop(heap)
                        from_tail = False
                elif tail:
                    entry = pop_tail()
                    from_tail = True
                else:
                    break
                if entry[0] > horizon:
                    if from_tail:
                        tail.appendleft(entry)  # head restored: still sorted
                    else:
                        heappush(heap, entry)
                    break
                item = entry[3]
                if item.__class__ is SC:
                    fn = item.fn
                    if fn is None:
                        self._dead -= 1
                        continue
                    item.fn = None
                    self.now = entry[0]
                    fn()
                else:
                    self.now = entry[0]
                    item()
            self.now = horizon
            return None
        finally:
            self._running = False

    def _run_instrumented(self, until: Optional[Any]) -> Any:
        """The generic step()-per-event loop, used when a race detector or
        profiler is attached so every dispatch passes their hooks."""
        if isinstance(until, Event):
            stop = until
            if stop.processed:
                return stop.value if stop.ok else None
            done: list = []
            stop.add_callback(done.append)
            while (self._heap or self._tail) and not done:
                self.step()
            if not done:
                raise SimulationError(
                    "simulation ran out of events before target event")
            if not stop.ok:
                if not stop._defused:
                    raise stop.value
                return None
            return stop.value
        if until is None:
            while self._heap or self._tail:
                self.step()
            return None
        horizon = int(until)
        if horizon < self.now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self.now})")
        while True:
            nxt = self.peek()               # purges tombstones at the heads
            if nxt is None or nxt > horizon:
                break
            self.step()
        self.now = horizon
        return None

    # -- conveniences ----------------------------------------------------------

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.primitives import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.primitives import AllOf

        return AllOf(self, list(events))

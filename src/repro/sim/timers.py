"""Timer services: a clock + cancellable callbacks.

Protocol stacks and applications never touch the simulator directly; they
schedule through a :class:`TimerService`.  On a plain host that is
:class:`SimTimerService` (true time).  Inside a guest it is the kernel's
virtual timer wheel (:mod:`repro.guest.timer`), which freezes with the
temporal firewall — that is how a checkpoint hides from TCP retransmit
timers and application sleeps.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.sim.core import Simulator


class TimerHandle:
    """A cancellable pending callback."""

    __slots__ = ("fired", "cancelled", "_fn")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fired = False
        self.cancelled = False
        self._fn = fn

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self.cancelled = True

    def _fire(self) -> None:
        if self.cancelled or self.fired:
            return
        self.fired = True
        self._fn()


class TimerService(Protocol):
    """What stacks need from their environment: a clock and delayed calls."""

    def now(self) -> int:
        """Current time in nanoseconds, in this service's timebase."""
        ...

    def call_in(self, delay_ns: int, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn`` after ``delay_ns`` in this service's timebase."""
        ...


class SimTimerService:
    """Timers in true simulated time (for hosts outside any guest)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def now(self) -> int:
        return self.sim.now

    def call_in(self, delay_ns: int, fn: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle(fn)
        self.sim.call_in(delay_ns, handle._fire)
        return handle

"""Timer services: a clock + cancellable callbacks.

Protocol stacks and applications never touch the simulator directly; they
schedule through a :class:`TimerService`.  On a plain host that is
:class:`SimTimerService` (true time).  Inside a guest it is the kernel's
virtual timer wheel (:mod:`repro.guest.timer`), which freezes with the
temporal firewall — that is how a checkpoint hides from TCP retransmit
timers and application sleeps.

Cancellation is propagated downward: a :class:`TimerHandle` owns an
underlying cancellable (a :class:`~repro.sim.core.ScheduledCall` for
:class:`SimTimerService`, a wheel entry for the guest timer wheel), so a
cancelled timer's store entry is reclaimed lazily instead of sitting on the
event store as a tombstone until its original deadline.  TCP's
cancel/rearm-heavy RTO timers make this the difference between an O(live)
and an O(every-timer-ever-armed) store.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.sim.core import Simulator


class TimerHandle:
    """A cancellable pending callback."""

    __slots__ = ("fired", "cancelled", "_fn", "_call")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fired = False
        self.cancelled = False
        self._fn: Optional[Callable[[], None]] = fn
        #: underlying cancellable (anything with ``.cancel()``), installed
        #: by whichever service armed this handle; cancelling the handle
        #: cancels it so the backing heap/wheel entry is reclaimed lazily
        self._call = None

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        self._fn = None                     # release the closure now
        call, self._call = self._call, None
        if call is not None:
            call.cancel()

    def _fire(self) -> None:
        if self.cancelled or self.fired:
            return
        self.fired = True
        self._call = None
        fn, self._fn = self._fn, None
        fn()


class TimerService(Protocol):
    """What stacks need from their environment: a clock and delayed calls."""

    def now(self) -> int:
        """Current time in nanoseconds, in this service's timebase."""
        ...

    def call_in(self, delay_ns: int, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn`` after ``delay_ns`` in this service's timebase."""
        ...


class SimTimerService:
    """Timers in true simulated time (for hosts outside any guest)."""

    __slots__ = ("sim", "_schedule")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # prebound: call_in is on TCP's RTO arm/cancel hot path
        self._schedule = sim.schedule_call

    def now(self) -> int:
        return self.sim.now

    def call_in(self, delay_ns: int, fn: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle(fn)
        handle._call = self._schedule(self.sim.now + delay_ns, handle._fire)
        return handle

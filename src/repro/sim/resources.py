"""Shared-resource primitives: resources, stores, and containers.

These follow the usual DES idioms: a request/put/get returns an event that a
process ``yield``\\ s.  All queues are FIFO (with an optional priority field
on resources), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from repro.errors import ResourceError
from repro.sim.core import Event, Simulator


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """A counted resource with ``capacity`` slots.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Request] = set()
        self._queue: list[tuple[int, int, Request]] = []
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires once the slot is granted."""
        req = Request(self, priority)
        self._seq += 1
        heapq.heappush(self._queue, (priority, self._seq, req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request not in self._users:
            raise ResourceError("releasing a slot that was never granted")
        self._users.discard(request)
        self._grant()

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request (no-op if already granted)."""
        if request in self._users:
            return
        self._queue = [entry for entry in self._queue if entry[2] is not request]
        heapq.heapify(self._queue)

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _prio, _seq, req = heapq.heappop(self._queue)
            self._users.add(req)
            req.succeed()


class Store:
    """An unbounded-or-bounded FIFO buffer of Python objects."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; blocks (the event stays pending) when full."""
        ev = Event(self.sim)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self) -> Event:
        """Withdraw the oldest item; the event's value is the item."""
        ev = Event(self.sim)
        self._getters.append(ev)
        self._settle()
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        self._settle()
        if self._items and not self._getters:
            item = self._items.pop(0)
            self._settle()        # room may unblock a pending put
            return True, item
        return False, None

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                    self.capacity is None or len(self._items) < self.capacity):
                ev, item = self._putters.pop(0)
                self._items.append(item)
                ev.succeed()
                progressed = True
            while self._getters and self._items:
                ev = self._getters.pop(0)
                ev.succeed(self._items.pop(0))
                progressed = True


class Container:
    """A homogeneous quantity (bytes, tokens) with put/get of amounts."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 init: float = 0) -> None:
        if init < 0 or init > capacity:
            raise ResourceError("init must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self._getters: list[tuple[Event, float]] = []
        self._putters: list[tuple[Event, float]] = []

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ResourceError("cannot put a negative amount")
        ev = Event(self.sim)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ResourceError("cannot get a negative amount")
        ev = Event(self.sim)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.pop(0)
                    self.level += amount
                    ev.succeed()
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self.level:
                    self._getters.pop(0)
                    self.level -= amount
                    ev.succeed()
                    progressed = True

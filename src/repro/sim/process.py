"""Generator-coroutine processes for the simulation kernel.

A process wraps a generator that ``yield``\\ s :class:`~repro.sim.core.Event`
objects.  Each yielded event suspends the process until the event is
processed; the event's value is sent back into the generator (or its failure
exception is thrown in).  The process itself is an event that triggers when
the generator returns, carrying the generator's return value.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator, URGENT


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """Whatever the interrupter passed as the cause."""
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator coroutine; also an event for its completion."""

    __slots__ = ("name", "_generator", "_waiting_on", "_alive")

    def __init__(self, sim: Simulator, generator: Generator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process needs a generator, got {generator!r}")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._alive = True
        # Kick off on the next simulation step so construction order does
        # not matter within a single timestamp.
        start = Event(sim)
        start._ok = True
        start._value = None
        sim._enqueue(start, 0, URGENT)
        start.callbacks.append(self._resume)

    # -- state -----------------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    # -- interruption ------------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned: when it later
        fires, the process ignores it.  Interrupting a finished process is
        an error.
        """
        if not self._alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        waited = self._waiting_on
        if waited is not None:
            waited.remove_callback(self._resume)
            self._waiting_on = None
        kick = Event(self.sim)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick._defused = True
        self.sim._enqueue(kick, 0, URGENT)
        kick.callbacks.append(self._resume)

    # -- stepping ---------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._alive = False
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._alive = False
            err = SimulationError(
                f"process {self.name} yielded non-event {target!r}")
            self._generator.close()
            self.fail(err)
            return
        if target.sim is not self.sim:
            self._alive = False
            self.fail(SimulationError(
                f"process {self.name} yielded event from another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name} {'alive' if self._alive else 'done'}>"

#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown documentation.

Scans ``README.md``, ``docs/*.md``, and the ``#`` comment lines of
``examples/scenarios/*.toml`` for inline markdown links
(``[text](target)``), ignores absolute URLs and mailto links, and
verifies that every *relative* target resolves to a real file — and,
when the target carries a ``#fragment``, that the destination document
actually contains a heading that slugifies to that fragment.

Run from anywhere:

    python tools/check_links.py [repo_root]

Exit status is 0 when every link resolves, 1 otherwise (one diagnostic
line per broken link).  CI runs this next to the doctest step so docs
rot is caught at review time, not by the next reader.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links only; reference-style links are not used in this repo.
# Skips images' leading "!" implicitly (the [..](..) shape is the same
# and the target must exist either way).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """Slugify a heading the way GitHub anchors do (close enough).

    Lowercase, strip markdown emphasis/backticks, drop punctuation,
    spaces become hyphens.
    """
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def doc_files(root: Path) -> list[Path]:
    """The set under the docs gate: top README, docs/*.md, and the
    shipped scenario files (whose comments link back into docs/)."""
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    files += sorted((root / "examples" / "scenarios").glob("*.toml"))
    return [f for f in files if f.is_file()]


def check_file(md: Path, root: Path) -> list[str]:
    """Return one diagnostic string per broken relative link in *md*."""
    problems = []
    text = md.read_text(encoding="utf-8")
    if md.suffix == ".toml":
        # Only comment lines carry prose links; a link-shaped string
        # inside a TOML value is data, not documentation.
        text = "\n".join(line for line in text.splitlines()
                         if line.lstrip().startswith("#"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        path_part, _, fragment = target.partition("#")
        dest = (md.parent / path_part).resolve()
        try:
            dest.relative_to(root.resolve())
        except ValueError:
            problems.append(f"{md}: link escapes the repo: {target}")
            continue
        if not dest.exists():
            problems.append(f"{md}: broken link: {target}")
            continue
        if fragment and dest.suffix == ".md":
            headings = HEADING_RE.findall(dest.read_text(encoding="utf-8"))
            if fragment not in {github_slug(h) for h in headings}:
                problems.append(
                    f"{md}: missing anchor #{fragment} in {path_part}")
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent
    files = doc_files(root)
    problems = [p for md in files for p in check_file(md, root)]
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(files)
    if problems:
        print(f"check_links: {len(problems)} broken link(s) "
              f"across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"check_links: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

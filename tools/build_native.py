#!/usr/bin/env python3
"""Build (or report on) the optional mypyc extensions in place.

Usage::

    python tools/build_native.py            # compile, if mypyc is available
    python tools/build_native.py --check    # report native/pure status only
    python tools/build_native.py --clean    # remove compiled artifacts

Compiles ``repro.sim.core`` and ``repro.net.dummynet`` to C extensions
next to their sources (an in-place ``build_ext``), so ``PYTHONPATH=src``
runs pick them up automatically — the import system prefers the extension
over the ``.py``.  The pure-Python tree stays authoritative: after
building, run the tier-1 suite and ``repro bench`` and confirm every
``digest_match`` is still ``true``.

Degrades gracefully: without mypyc (the ``.[native]`` extra) or a C
toolchain this prints what is missing and exits 0, because the native
build is an optional accelerator, not a requirement.
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
MODULES = ("repro.sim.core", "repro.net.dummynet")


def _artifact_globs() -> list:
    pats = []
    for mod in MODULES:
        rel = mod.replace(".", os.sep)
        pats.append(os.path.join(REPO, "src", rel + ".*.so"))
        pats.append(os.path.join(REPO, "src", rel + ".*.pyd"))
    # mypyc emits one shared runtime library per build group
    pats.append(os.path.join(REPO, "src", "*__mypyc*.so"))
    pats.append(os.path.join(REPO, "src", "*__mypyc*.pyd"))
    return pats


def check() -> int:
    any_native = False
    for mod in MODULES:
        rel = mod.replace(".", os.sep)
        hits = (glob.glob(os.path.join(REPO, "src", rel + ".*.so")) +
                glob.glob(os.path.join(REPO, "src", rel + ".*.pyd")))
        status = "native" if hits else "pure-python"
        any_native = any_native or bool(hits)
        print(f"{mod:<24} {status}")
    return 0


def clean() -> int:
    removed = 0
    for pat in _artifact_globs():
        for path in glob.glob(pat):
            os.unlink(path)
            print(f"removed {os.path.relpath(path, REPO)}")
            removed += 1
    if not removed:
        print("no compiled artifacts found")
    return 0


def build() -> int:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        print("mypyc is not installed; skipping the native build "
              "(pip install -e .[native] to enable)")
        return 0
    env = dict(os.environ, REPRO_NATIVE="1")
    proc = subprocess.run(
        [sys.executable, "setup.py", "build_ext", "--inplace"],
        cwd=REPO, env=env)
    if proc.returncode != 0:
        print("native build failed (missing C toolchain?); the "
              "pure-Python modules remain in use")
        return proc.returncode
    check()
    print("native build complete — now re-run the tier-1 suite and "
          "`repro bench`; every digest_match must still be true")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="report which modules are compiled, then exit")
    parser.add_argument("--clean", action="store_true",
                        help="remove compiled artifacts")
    args = parser.parse_args()
    if args.check:
        return check()
    if args.clean:
        return clean()
    return build()


if __name__ == "__main__":
    raise SystemExit(main())

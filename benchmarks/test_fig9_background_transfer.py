"""Figure 9: effect of background swap transfers on disk throughput.

Paper: a large file copy measures disk write throughput at one-second
intervals under three conditions —

* no swap activity (baseline);
* swap-out with eager pre-copy (triggered 60 s in): looks very similar
  to the baseline, ~9% longer execution;
* swap-in with lazy copy-in: a more noticeable ~19% longer execution and
  a 45% drop in throughput, caused by the copy-in's more aggressive
  prefetching.
"""

import pytest

from repro.analysis import ExperimentReport, fmt_s
from repro.hw import Disk, DiskSpec
from repro.sim import Simulator
from repro.storage import (ByteChannel, EagerCopyOut, Extent, LazyCopyIn,
                           LazyVolume, LinearVolume, TransferConfig)
from repro.units import GB, MB, SECOND
from repro.workloads import FileCopyBenchmark

from harness import emit_report

COPY_BYTES = 3072 * MB          # the foreground workload (~130 s)
DELTA_BLOCKS = 70_000           # ~275 MB of swap state moving in background
CONTROL_NET = 11_500_000        # bytes/s


def scenario(mode):
    sim = Simulator()
    disk = Disk(sim, DiskSpec(capacity_bytes=64 * GB))
    volume = LinearVolume(Extent(disk, 0, 3_000_000))
    channel = ByteChannel(sim, CONTROL_NET)
    bench = FileCopyBenchmark(sim, volume, total_bytes=COPY_BYTES,
                              src_vba=0, dst_vba=1_500_000)
    if mode == "none":
        pass
    elif mode == "eager":
        # Swap-out pre-copy starts 60 s into the run, from a delta region
        # elsewhere on the same spindle.
        copy = EagerCopyOut(sim, disk, list(range(3_200_000,
                                                  3_200_000 + DELTA_BLOCKS)),
                            channel,
                            TransferConfig(rate_limit_bytes_per_s=6 * MB))
        sim.call_in(60 * SECOND, copy.start)
    elif mode == "lazy":
        # Swap-in just resumed: the workload's source region is still on
        # the server; reads fault it in and a prefetcher fills the rest.
        # The copy-in prefetches in LVM-mirror regions (256 KB), which
        # is what makes it the aggressive, seek-heavy interferer.
        pager = LazyCopyIn(sim, disk, channel=channel,
                           config=TransferConfig(
                               chunk_blocks=64,
                               rate_limit_bytes_per_s=11 * MB),
                           missing_blocks=range(0, DELTA_BLOCKS))
        lazy_volume = LazyVolume(sim, volume, pager)
        bench = FileCopyBenchmark(sim, lazy_volume, total_bytes=COPY_BYTES,
                                  src_vba=0, dst_vba=1_500_000)
        pager.start()
    result = sim.run(until=bench.run())
    return result


def run_fig9():
    return {mode: scenario(mode) for mode in ("none", "eager", "lazy")}


def test_fig9_background_transfer(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    base = results["none"]
    eager = results["eager"]
    lazy = results["lazy"]

    eager_slowdown = eager.duration_ns / base.duration_ns - 1
    lazy_slowdown = lazy.duration_ns / base.duration_ns - 1
    # Throughput drop while the interference is active (paper compares
    # the depressed plateau against the baseline plateau).
    base_mbps = base.steady_mean_mbps()
    lazy_active = [v for t, v in lazy.samples
                   if t < min(60, len(lazy.samples) - 2)]
    lazy_mbps = sum(lazy_active) / len(lazy_active)
    drop = 1 - lazy_mbps / base_mbps

    report = ExperimentReport("Figure 9 — file copy under background "
                              "swap transfers")
    report.add("baseline runtime", "(baseline)", fmt_s(base.duration_ns))
    report.add("eager copy-out runtime", "+9%",
               f"{fmt_s(eager.duration_ns)} (+{eager_slowdown * 100:.0f}%)")
    report.add("lazy copy-in runtime", "+19%",
               f"{fmt_s(lazy.duration_ns)} (+{lazy_slowdown * 100:.0f}%)")
    report.add("throughput drop under lazy copy-in", "45%",
               f"{drop * 100:.0f}%")
    report.add("baseline copy throughput", "~15 MB/s",
               f"{base_mbps:.1f} MB/s")
    emit_report(report, "fig9.txt")
    import os
    from repro.analysis import timeseries_chart
    from harness import RESULTS_DIR
    with open(os.path.join(RESULTS_DIR, "fig9.txt"), "a") as fh:
        for label, res in (("no swap", base), ("lazy copy-in", lazy)):
            chart = timeseries_chart(
                [(float(t), v) for t, v in res.samples],
                title=f"file-copy write throughput, {label}", unit="MB/s")
            print(chart)
            fh.write("\n" + chart + "\n")

    # Shape assertions:
    # 1. Eager copy-out is the gentle one: small but visible slowdown.
    assert 0.02 < eager_slowdown < 0.15
    # 2. Lazy copy-in interferes clearly more.
    assert lazy_slowdown > eager_slowdown * 1.5
    assert 0.10 < lazy_slowdown < 0.45
    # 3. Throughput visibly depressed while the copy-in is active.
    assert drop > 0.25

"""Figure 4: periodic checkpointing of a 10 ms-sleep microbenchmark.

Paper: iterations measure 20 ms; during normal execution 97% of
iterations are accurate to within 28 µs; a checkpoint briefly increases
the measurement error to ~80 µs.  Checkpoints every 5 seconds.
"""

import pytest

from repro.analysis import ExperimentReport, fmt_us, percentile
from repro.units import MS, SECOND, US
from repro.workloads import SleeperBenchmark

from harness import emit_report, periodic_local_checkpoints, single_node_rig

ITERATIONS = 6000            # as in the paper's Figure 4 x-axis
TARGET_NS = 20 * MS


def run_fig4():
    sim, testbed, exp = single_node_rig(seed=4)
    kernel = exp.kernel("node0")
    bench = SleeperBenchmark(kernel, iterations=ITERATIONS)
    bench.start()
    node = exp.node("node0")
    results = periodic_local_checkpoints(sim, node.checkpointer,
                                         period_ns=5 * SECOND, count=23,
                                         start_at_ns=sim.now + 2 * SECOND)
    sim.run(until=bench.join())
    return bench.result, results, kernel


def test_fig4_sleep_transparency(benchmark):
    result, checkpoints, kernel = benchmark.pedantic(run_fig4, rounds=1,
                                                     iterations=1)
    assert len(result.iteration_ns) == ITERATIONS
    assert len(checkpoints) == 23

    deviations = [abs(t - TARGET_NS) for t in result.iteration_ns]
    frac_28us = result.within(TARGET_NS, 28 * US)
    worst = max(deviations)
    p999 = percentile(deviations, 99.9)

    report = ExperimentReport("Figure 4 — usleep(10 ms) loop under "
                              "checkpoints every 5 s")
    report.add("iteration time", "20 ms",
               f"{result.iteration_ns[100] / 1e6:.2f} ms")
    report.add("iterations within 28 us", ">= 97%", f"{frac_28us * 100:.1f}%")
    report.add("worst-case error (at a checkpoint)", "~80 us", fmt_us(worst))
    report.add("99.9th pct error", "<= ~80 us", fmt_us(p999))
    report.add("checkpoints concealed", "23", str(kernel.vclock.freezes))
    emit_report(report, "fig4.txt")

    # Shape assertions (the paper's transparency claims):
    # 1. The loop still measures ~20 ms everywhere.
    assert all(TARGET_NS - 1 * MS < t < TARGET_NS + 1 * MS
               for t in result.iteration_ns)
    # 2. Baseline accuracy: the overwhelming majority within 28 us.
    assert frac_28us >= 0.97
    # 3. Checkpoints cost only tens of microseconds of measured error —
    #    two orders of magnitude below the concealed downtime.
    assert worst < 200 * US
    downtime = checkpoints[0].downtime_ns
    assert downtime > 5 * MS
    assert worst < downtime / 10
    # 4. Every checkpoint was concealed by the virtual clock.
    assert kernel.vclock.total_hidden_ns == pytest.approx(
        sum(c.downtime_ns for c in checkpoints), rel=0.01)

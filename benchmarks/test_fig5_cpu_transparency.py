"""Figure 5: periodic checkpointing of a CPU-intensive loop.

Paper: uncheckpointed iterations take 236.6 ms (90% within 9 ms);
with checkpoints every 5 s the temporal firewall keeps CPU-time
allocation within 27 ms of the expected value — the excess being
residual dom0 checkpoint activity, not leaked downtime.
"""

import pytest

from repro.analysis import ExperimentReport, fmt_ms, fraction_within
from repro.units import MS, SECOND
from repro.workloads import CpuBurnBenchmark

from harness import emit_report, periodic_local_checkpoints, single_node_rig

WORK_NS = 236_600_000
ITERATIONS = 600


def run_fig5():
    # Baseline: no checkpoints.
    sim_b, _tb, exp_b = single_node_rig(seed=51)
    base = CpuBurnBenchmark(exp_b.kernel("node0"), WORK_NS, iterations=60)
    base.start()
    sim_b.run(until=base.join())

    # Checkpointed run.
    sim, _testbed, exp = single_node_rig(seed=5)
    bench = CpuBurnBenchmark(exp.kernel("node0"), WORK_NS, ITERATIONS)
    bench.start()
    checkpoints = periodic_local_checkpoints(
        sim, exp.node("node0").checkpointer, period_ns=5 * SECOND,
        count=27, start_at_ns=sim.now + 2 * SECOND)
    sim.run(until=bench.join())
    return base.result, bench.result, checkpoints


def test_fig5_cpu_transparency(benchmark):
    base, ckpted, checkpoints = benchmark.pedantic(run_fig5, rounds=1,
                                                   iterations=1)
    assert len(ckpted.iteration_ns) == ITERATIONS
    assert len(checkpoints) == 27

    baseline = base.baseline_ns()
    worst_excess = ckpted.max_excess_ns()
    frac_9ms = fraction_within(ckpted.iteration_ns, baseline, 9 * MS)

    report = ExperimentReport("Figure 5 — CPU-intensive loop under "
                              "checkpoints every 5 s")
    report.add("baseline iteration", "236.6 ms", fmt_ms(baseline))
    report.add("worst-case excess at checkpoints", "<= 27 ms",
               fmt_ms(worst_excess))
    report.add("iterations within 9 ms of baseline", "~90%",
               f"{frac_9ms * 100:.1f}%")
    report.add("concealed downtime per checkpoint", "(hidden)",
               fmt_ms(checkpoints[0].downtime_ns))
    emit_report(report, "fig5.txt")

    # Shape assertions:
    # 1. The uncheckpointed loop runs at the nominal work time.
    assert baseline == pytest.approx(WORK_NS, rel=0.01)
    # 2. Checkpoints perturb some iterations (dom0 pre-copy contention)...
    assert worst_excess > 5 * MS
    # 3. ...but within the paper's bound, and far below the downtime that
    #    a non-transparent suspend would leak.
    assert worst_excess <= 35 * MS
    # 4. Most iterations are unperturbed.
    assert frac_9ms >= 0.80

"""Figure 7: a four-node BitTorrent swarm under periodic checkpoints.

Paper: one seeder and three clients on a 100 Mbps LAN download a 3 GB
file.  Checkpointing starts 70 s into the run (steady state), repeats
every 5 s for 100 s, then stops; the run continues another 100 s.  Each
client averages ~1 MB/s from the seeder; each checkpoint causes only a
small dip, and repeated checkpointing does not move the center line.

We run a time-scaled version of the same schedule (steady state arrives
well before 70 s here): checkpoints from t=20 s to t=50 s, run to t=80 s,
plus an identical no-checkpoint control run.  BitTorrent over drop-tail
queues retransmits as part of its normal congestion sawtooth, so the
transparency claim is *differential*: checkpointing adds no TCP damage
and does not move the throughput center line.
"""

import pytest

from repro.analysis import ExperimentReport, mean
from repro.units import GB, MBPS, MS, SECOND
from repro.workloads import BitTorrentSwarm

from harness import emit_report, lan_rig, periodic_coordinated_checkpoints

WARMUP_S = 20
CKPT_WINDOW_S = 30
TAIL_S = 30
NUM_CKPTS = 6
TOTAL_S = WARMUP_S + CKPT_WINDOW_S + TAIL_S


def run_swarm(seed, with_checkpoints):
    sim, testbed, exp = lan_rig(num_nodes=4, bandwidth_bps=100 * MBPS,
                                seed=seed)
    kernels = [exp.kernel(f"node{i}") for i in range(4)]
    swarm = BitTorrentSwarm(kernels, seeder_index=0, file_bytes=3 * GB,
                            rng=testbed.streams.stream("bt"))
    swarm.start()
    start = sim.now
    results = []
    if with_checkpoints:
        results = periodic_coordinated_checkpoints(
            sim, exp, period_ns=5 * SECOND, count=NUM_CKPTS,
            start_at_ns=start + WARMUP_S * SECOND)
    sim.run(until=start + TOTAL_S * SECOND)
    return swarm, results, start


def total_retransmits(swarm):
    return sum(c.stats.retransmits
               for peer in swarm.peers
               for c in peer.kernel.tcp.connections.values())


def run_fig7():
    control_swarm, _none, _s0 = run_swarm(7, with_checkpoints=False)
    swarm, checkpoints, start = run_swarm(7, with_checkpoints=True)
    return control_swarm, swarm, checkpoints, start


def test_fig7_bittorrent(benchmark):
    control, swarm, checkpoints, start = benchmark.pedantic(
        run_fig7, rounds=1, iterations=1)
    assert len(checkpoints) == NUM_CKPTS
    series = swarm.seeder_throughput_series(bucket_ns=1 * SECOND)
    ckpt_start_v = (WARMUP_S - 2) * SECOND
    ckpt_end_v = (WARMUP_S + CKPT_WINDOW_S + 5) * SECOND

    client_means = {}
    center_during = {}
    center_outside = {}
    for client, samples in series.items():
        steady = [(t - start, v) for t, v in samples
                  if t - start > 10 * SECOND]
        client_means[client] = mean([v for _t, v in steady])
        during = [v for t, v in steady if ckpt_start_v < t < ckpt_end_v]
        outside = [v for t, v in steady if t >= ckpt_end_v]
        center_during[client] = sorted(during)[len(during) // 2]
        center_outside[client] = sorted(outside)[len(outside) // 2]

    retx = total_retransmits(swarm)
    retx_control = total_retransmits(control)

    report = ExperimentReport("Figure 7 — 4-node BitTorrent under "
                              "checkpoints (window mid-run)")
    for client in sorted(series):
        report.add(f"{client} mean seeder throughput", "~1 MB/s",
                   f"{client_means[client]:.2f} MB/s")
        report.add(f"{client} center line ckpt-window vs after",
                   "unchanged",
                   f"{center_during[client]:.2f} vs "
                   f"{center_outside[client]:.2f} MB/s")
    report.add("TCP retransmits vs no-ckpt control", "no extra damage",
               f"{retx} vs {retx_control}")
    report.add("packets captured in the network core", "(delay nodes)",
               str(sum(r.core_packets_captured for r in checkpoints)))
    report.add("suspend skew (worst)", "~ clock sync error",
               f"{max(r.suspend_skew_ns for r in checkpoints) / 1000:.0f} us")
    emit_report(report, "fig7.txt")
    import os
    from repro.analysis import timeseries_chart
    from harness import RESULTS_DIR
    client0 = sorted(series)[0]
    chart = timeseries_chart(
        [((t - start) / 1e9, v) for t, v in series[client0]],
        title=f"seeder -> {client0} throughput (1 s buckets)", unit="MB/s",
        marks=[WARMUP_S + 5 * i for i in range(NUM_CKPTS)])
    print(chart)
    with open(os.path.join(RESULTS_DIR, "fig7.txt"), "a") as fh:
        fh.write("\n" + chart + "\n")

    # Shape assertions:
    # 1. Every client pulls steadily from the seeder, near 1 MB/s.
    for client, avg in client_means.items():
        assert 0.4 < avg < 3.0, f"{client}: {avg} MB/s"
    # 2. Repeated checkpointing does not move the center line.
    for client in series:
        assert center_during[client] == pytest.approx(
            center_outside[client], rel=0.25)
    # 3. Checkpoints add no TCP damage beyond the swarm's normal
    #    congestion behaviour.
    assert retx <= 1.15 * retx_control + 50
    # 4. The delay nodes captured the LAN's in-flight packets.
    assert sum(r.core_packets_captured for r in checkpoints) > 0

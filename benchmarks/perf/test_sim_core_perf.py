"""Event-core microbenchmarks: the scheduling fast path vs the legacy path.

Run with ``pytest benchmarks/perf/ --benchmark-only -s`` for interactive
pytest-benchmark tables, or ``python -m repro bench`` for the
machine-readable ``BENCH_sim_core.json`` artifact (which also acts as a
fast/legacy equivalence gate).  Scenarios live in :mod:`repro.bench`.
"""

import pytest

from repro.bench.scenarios import (make_sim, run_event_churn, run_fig6,
                                   run_fig7, run_timer_storm)


@pytest.mark.parametrize("fast_path", [True, False],
                         ids=["fast", "legacy"])
def test_event_churn(benchmark, fast_path):
    fired = benchmark.pedantic(
        lambda: run_event_churn(make_sim(fast_path=fast_path), events=50_000),
        rounds=3, iterations=1)
    assert fired == 50_000


@pytest.mark.parametrize("fast_path", [True, False],
                         ids=["fast", "legacy"])
def test_timer_cancel_rearm_storm(benchmark, fast_path):
    armed, fired = benchmark.pedantic(
        lambda: run_timer_storm(make_sim(fast_path=fast_path), rounds=100),
        rounds=3, iterations=1)
    assert armed == 100 * 250
    assert fired == 100          # one survivor per round


@pytest.mark.parametrize("mode", ["fast", "legacy"])
def test_fig6_iperf_wall_clock(benchmark, mode):
    fast = mode == "fast"
    digest = benchmark.pedantic(
        lambda: run_fig6(make_sim(fast_path=fast, packet_trains=fast),
                         run_seconds=6, num_ckpts=1),
        rounds=1, iterations=1)
    assert digest            # non-empty hex digest; equality is gated in
    #                          tests/test_fastpath_equivalence.py


@pytest.mark.parametrize("mode", ["fast", "legacy"])
def test_fig7_bittorrent_wall_clock(benchmark, mode):
    fast = mode == "fast"
    digest = benchmark.pedantic(
        lambda: run_fig7(make_sim(fast_path=fast, packet_trains=fast),
                         run_seconds=8, num_ckpts=1),
        rounds=1, iterations=1)
    assert digest

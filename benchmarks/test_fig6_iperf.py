"""Figure 6: iperf over a 1 Gbps link under coordinated checkpoints.

Paper: a 25-second TCP stream checkpointed every 5 seconds.  Throughput
(20 ms averages) shows only a slight dip after each checkpoint.  The
first four checkpoints cause inter-packet arrival delays of 5801, 816,
399, and 330 µs (vs. an 18 µs average) — the delays shrink as NTP
converges, because the suspend skew *is* the clock-sync error.  The trace
shows **no retransmissions, no duplicate acknowledgements, and no window
changes**.

Note on direction: the inter-packet delay is visible at the receiver when
the *sender* suspends first (the stream falls silent while the receiver's
clock still runs).  ntpd starts at node boot, so the sign of the residual
clock offset between the two nodes is fixed for the whole run; we stream
from the node that suspends first, as the paper's trace implies.
"""

import pytest

from repro.analysis import ExperimentReport, fmt_us
from repro.units import GBPS, MS, SECOND, US
from repro.workloads import IperfSession

from harness import emit_report, periodic_coordinated_checkpoints, \
    two_node_rig

RUN_SECONDS = 25
NUM_CKPTS = 4
PAPER_GAPS_US = ("5801", "816", "399", "330")


def run_fig6():
    sim, testbed, exp = two_node_rig(bandwidth_bps=GBPS, seed=6)
    # With this seed node1's clock leads: it suspends first, so it sends.
    sender, receiver = exp.kernel("node1"), exp.kernel("node0")
    session = IperfSession(sender, receiver)
    session.start()
    start = sim.now
    results = periodic_coordinated_checkpoints(
        sim, exp, period_ns=5 * SECOND, count=NUM_CKPTS,
        start_at_ns=start + 5 * SECOND)
    sim.run(until=start + RUN_SECONDS * SECOND)
    session.stop()
    sim.run(until=sim.now + 200 * MS)
    return session, results, receiver


def gap_at_checkpoint(trace, receiver, checkpoints, index) -> int:
    """Largest receiver-side inter-arrival gap around checkpoint ``index``.

    Arrival timestamps are in receiver virtual time; the suspend instant
    is known in true time, so shift it by the downtime concealed before
    that checkpoint.
    """
    result = checkpoints[index].node_results[receiver.name]
    concealed_before = sum(
        c.node_results[receiver.name].downtime_ns for c in checkpoints[:index])
    v_suspend = result.clock_frozen_at_ns - concealed_before
    window = 1 * SECOND
    return trace.max_gap_in_window(v_suspend - window, v_suspend + window)


def test_fig6_iperf_transparency(benchmark):
    session, checkpoints, receiver = benchmark.pedantic(run_fig6, rounds=1,
                                                        iterations=1)
    assert len(checkpoints) == NUM_CKPTS
    trace = session.trace
    mean_gap = trace.mean_gap_ns()
    gaps = [gap_at_checkpoint(trace, receiver, checkpoints, i)
            for i in range(NUM_CKPTS)]

    sender_stats = session.sender_stats()
    receiver_stats = session.receiver_stats()
    throughput = [v for _t, v in trace.throughput_series(20 * MS)]
    mean_mbps = sum(throughput) / len(throughput)

    report = ExperimentReport("Figure 6 — iperf on 1 Gbps under "
                              "checkpoints every 5 s")
    report.add("mean throughput (20 ms buckets)", "~55 MB/s",
               f"{mean_mbps:.1f} MB/s")
    report.add("mean inter-packet gap", "18 us", fmt_us(mean_gap))
    for i, g in enumerate(gaps):
        report.add(f"gap across checkpoint {i + 1}",
                   f"{PAPER_GAPS_US[i]} us", fmt_us(g))
    report.add("TCP retransmissions", "0", str(sender_stats.retransmits))
    report.add("duplicate ACKs", "0",
               str(sender_stats.dupacks_received +
                   receiver_stats.dupacks_sent))
    report.add("zero-window advertisements", "0",
               str(sender_stats.zero_window_advertisements +
                   receiver_stats.zero_window_advertisements))
    report.add("suspend skew per checkpoint", "(= clock sync error)",
               " / ".join(fmt_us(c.suspend_skew_ns) for c in checkpoints))
    from repro.analysis import timeseries_chart
    series = [(t / 1e9, v) for t, v in trace.throughput_series(100 * MS)]
    concealed = 0
    marks = []
    for c in checkpoints:
        r = c.node_results[receiver.name]
        marks.append((r.clock_frozen_at_ns - concealed) / 1e9)
        concealed += r.downtime_ns
    report.note_chart = timeseries_chart(
        series, title="receiver throughput (100 ms buckets, virtual time)",
        unit="MB/s", marks=marks)
    print(report.note_chart)
    emit_report(report, "fig6.txt")
    import os
    from harness import RESULTS_DIR
    with open(os.path.join(RESULTS_DIR, "fig6.txt"), "a") as fh:
        fh.write("\n" + report.note_chart + "\n")

    # Shape assertions:
    # 1. Throughput is steady at the paravirtual NIC rate.
    assert 40 < mean_mbps < 70
    # 2. The trace is clean across all checkpoints.
    assert sender_stats.retransmits == 0
    assert sender_stats.timeouts == 0
    assert sender_stats.dupacks_received == 0
    assert receiver_stats.dupacks_sent == 0
    assert sender_stats.zero_window_advertisements == 0
    # 3. Gaps at checkpoints: well above the steady-state inter-packet
    #    time, far below the concealed downtime.
    for gap in gaps:
        assert gap > 3 * mean_gap
        assert gap < checkpoints[0].node_results[receiver.name].downtime_ns
    # 4. The first checkpoint (ntpd still converging) dominates.
    assert gaps[0] > 3 * max(gaps[1:])
    # 5. Suspend skew shrinks as NTP converges, and the observed gaps
    #    track the skews.
    assert checkpoints[-1].suspend_skew_ns < checkpoints[0].suspend_skew_ns
    for gap, ckpt in zip(gaps, checkpoints):
        assert gap == pytest.approx(ckpt.suspend_skew_ns, rel=1.0, abs=500 * US)

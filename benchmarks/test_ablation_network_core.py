"""Ablation: checkpointing the network core (§3.3, §4.4).

On a link with a large bandwidth-delay product, the delay node's Dummynet
pipes hold all in-flight packets.  With delay-node capture, endpoint
replay logs stay bounded by the clock-sync error; without it (the delay
node keeps running while the endpoints freeze), the pipes drain into the
frozen NICs and the endpoint logs grow to the bandwidth-delay product —
exactly the §3.3 replay problem the design avoids.
"""

import pytest

from repro.analysis import ExperimentReport
from repro.checkpoint import Coordinator
from repro.net import Packet
from repro.units import MBPS, MS, SECOND

from harness import emit_report, two_node_rig

LINK_DELAY = 50 * MS            # a fat pipe: ~50 packets in flight


def run_one(capture_core):
    sim, testbed, exp = two_node_rig(bandwidth_bps=100 * MBPS,
                                     delay_ns=LINK_DELAY, seed=44)
    if not capture_core:
        # Detach the delay-node agent: the network core runs through the
        # checkpoint, as in a naive endpoint-only design.
        session = f"ckpt.{exp.spec.name}"
        for name, agent in exp.delay_agents.items():
            for topic in (f"{session}/prepare", f"{session}/suspend_at",
                          f"{session}/now", f"{session}/resume"):
                testbed.control.bus.unsubscribe(topic, name)
        exp.coordinator.detach()
        exp.coordinator = Coordinator(
            sim, testbed.control.bus, testbed.ops.clock,
            [n.agent for n in exp.nodes.values()], [], session=session)

    # Steady 1 packet/ms stream keeps the pipe's delay line populated.
    # Packets carry the sender's virtual timestamp, so the receiver can
    # measure the one-way delay the link emulation presents to the guest.
    src, dst = exp.kernel("node0"), exp.kernel("node1")
    got, latencies = [], []

    def receive(p):
        got.append(p.headers["n"])
        latencies.append(dst.now() - p.headers["vt"])

    dst.host.register_protocol("flood", receive)

    def flooder(k):
        n = 0
        while True:
            k.host.send(Packet("node0", "node1", "flood", 1434,
                               headers={"n": n, "vt": k.now()}))
            n += 1
            yield k.sleep(1 * MS)

    src.spawn(flooder)
    sim.run(until=sim.now + 30 * SECOND)          # NTP converges, flow steady
    result = sim.run(until=exp.coordinator.checkpoint_scheduled())
    sim.run(until=sim.now + 3 * SECOND)
    return result, got, latencies


def run_ablation():
    with_capture, got_with, lat_with = run_one(capture_core=True)
    without, got_without, lat_without = run_one(capture_core=False)
    return with_capture, got_with, lat_with, without, got_without, lat_without


def test_ablation_network_core(benchmark):
    (with_capture, got_with, lat_with, without, got_without,
     lat_without) = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    report = ExperimentReport("Ablation — checkpointing the network core "
                              "(50 ms link, 1 pkt/ms)")
    report.add("endpoint replay log, core captured",
               "bounded by sync error",
               f"{with_capture.endpoint_packets_replayed} packets")
    report.add("packets serialized inside delay node", "~BDP (~50)",
               str(with_capture.core_packets_captured))
    report.add("endpoint replay log, core NOT captured", "~BDP",
               f"{without.endpoint_packets_replayed} packets")
    min_lat_with = min(lat_with)
    min_lat_without = min(lat_without)
    report.add("min guest-observed link delay, captured", "50 ms",
               f"{min_lat_with / 1e6:.1f} ms")
    report.add("min guest-observed link delay, not captured",
               "compressed by the downtime",
               f"{min_lat_without / 1e6:.1f} ms")
    report.add("in-order delivery (both)", "yes",
               f"{got_with == sorted(got_with)} / "
               f"{got_without == sorted(got_without)}")
    emit_report(report, "ablation_network_core.txt")

    # 1. With core capture, the in-flight packets live in the delay node
    #    and the endpoint log is tiny (sync-error bounded).
    assert with_capture.core_packets_captured >= 25
    assert with_capture.endpoint_packets_replayed <= 10
    # 2. Without it, in-flight packets pile into the frozen NIC rings.
    assert without.endpoint_packets_replayed >= \
        5 * max(1, with_capture.endpoint_packets_replayed)
    assert without.endpoint_packets_replayed >= 10
    # 3. The fidelity violation: packets crossing a *running* pipe while
    #    guest time stood still arrive early — the emulated 50 ms delay is
    #    visibly compressed.  Core capture preserves it.
    assert min_lat_with > 49 * MS
    assert min_lat_without < min_lat_with - 5 * MS
    # 4. Delivery order survives either way (rings are FIFO); the damage
    #    is to timing fidelity, exactly as §3.3 argues.
    assert got_with == sorted(got_with)
    assert got_without == sorted(got_without)

"""Shared rig builders for the per-figure benchmark harness.

Every benchmark builds its experiment through the public testbed API,
runs the paper's scenario, prints a paper-vs-measured report, writes the
same report under ``benchmarks/results/``, and asserts the *shape* of the
result (who wins, by roughly what factor) rather than absolute numbers.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.analysis import ExperimentReport
from repro.sim import Simulator
from repro.testbed import (Emulab, ExperimentSpec, LinkSpec, NodeSpec,
                           TestbedConfig)
from repro.testbed.experiment import LanSpec
from repro.units import GBPS, MB, MBPS, MS, SECOND

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_report(report: ExperimentReport, filename: str) -> None:
    """Print the report; persist it under benchmarks/results/ as text + JSON.

    The ``.json`` twin carries the same rows machine-readably, so result
    diffs (e.g. the fast-path equivalence gate) and external tooling never
    have to parse the aligned text table.
    """
    text = report.render()
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, filename), "w") as fh:
        fh.write(text + "\n")
    stem = filename.rsplit(".", 1)[0]
    payload = {
        "experiment": report.experiment,
        "rows": [{"metric": r.metric, "paper": r.paper,
                  "measured": r.measured, "note": r.note}
                 for r in report.rows],
    }
    with open(os.path.join(RESULTS_DIR, stem + ".json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def single_node_rig(seed: int = 0, memory: int = 256 * MB
                    ) -> Tuple[Simulator, Emulab, object]:
    """One checkpointable guest, swapped in."""
    sim = Simulator()
    testbed = Emulab(sim, TestbedConfig(num_machines=2, seed=seed))
    exp = testbed.define_experiment(ExperimentSpec(
        "bench", nodes=[NodeSpec("node0", memory_bytes=memory)]))
    sim.run(until=exp.swap_in())
    return sim, testbed, exp


def two_node_rig(bandwidth_bps: int = GBPS, delay_ns: int = 0,
                 seed: int = 0, memory: int = 256 * MB
                 ) -> Tuple[Simulator, Emulab, object]:
    """Two guests joined by one shaped link (the Fig. 6 topology)."""
    sim = Simulator()
    testbed = Emulab(sim, TestbedConfig(num_machines=4, seed=seed))
    exp = testbed.define_experiment(ExperimentSpec(
        "bench",
        nodes=[NodeSpec("node0", memory_bytes=memory),
               NodeSpec("node1", memory_bytes=memory)],
        links=[LinkSpec("link0", "node0", "node1",
                        bandwidth_bps=bandwidth_bps, delay_ns=delay_ns)]))
    sim.run(until=exp.swap_in())
    return sim, testbed, exp


def lan_rig(num_nodes: int = 4, bandwidth_bps: int = 100 * MBPS,
            seed: int = 0, memory: int = 256 * MB
            ) -> Tuple[Simulator, Emulab, object]:
    """N guests on a shaped LAN (the Fig. 7 topology)."""
    sim = Simulator()
    testbed = Emulab(sim, TestbedConfig(num_machines=2 * num_nodes + 1,
                                        seed=seed))
    names = [f"node{i}" for i in range(num_nodes)]
    exp = testbed.define_experiment(ExperimentSpec(
        "bench",
        nodes=[NodeSpec(n, memory_bytes=memory) for n in names],
        lans=[LanSpec("lan0", tuple(names), bandwidth_bps=bandwidth_bps)]))
    sim.run(until=exp.swap_in())
    return sim, testbed, exp


def periodic_local_checkpoints(sim: Simulator, checkpointer,
                               period_ns: int = 5 * SECOND,
                               count: int = 10,
                               start_at_ns: Optional[int] = None) -> list:
    """Run ``count`` local checkpoints, one every ``period_ns``.

    Returns the list that accumulates checkpoint event times (true ns at
    clock freeze) as the run progresses.
    """
    marks: list = []

    def loop():
        if start_at_ns is not None and start_at_ns > sim.now:
            yield sim.timeout(start_at_ns - sim.now)
        for _ in range(count):
            next_at = sim.now + period_ns
            result = yield from checkpointer.run()
            marks.append(result)
            if next_at > sim.now:
                yield sim.timeout(next_at - sim.now)

    sim.process(loop())
    return marks


def periodic_coordinated_checkpoints(sim: Simulator, experiment,
                                     period_ns: int = 5 * SECOND,
                                     count: int = 10,
                                     start_at_ns: Optional[int] = None) -> list:
    """Run ``count`` coordinated checkpoints at ``period_ns`` intervals."""
    results: list = []

    def loop():
        if start_at_ns is not None and start_at_ns > sim.now:
            yield sim.timeout(start_at_ns - sim.now)
        for _ in range(count):
            next_at = sim.now + period_ns
            proc = experiment.coordinator.checkpoint_scheduled()
            result = yield proc
            results.append(result)
            if next_at > sim.now:
                yield sim.timeout(next_at - sim.now)

    sim.process(loop())
    return results

"""Ablation: the transparency bound *is* the clock-sync error (§4.3, §7.1).

The paper states that checkpoint-boundary packet delays are "the result of
a fundamental limitation ... defined by the accuracy of the clock
synchronization algorithm".  This sweep makes the claim quantitative:
checkpoint the same two-node experiment at increasing times after node
boot (ntpd starts at boot) and record the realized suspend skew alongside
the pairwise clock error measured immediately before each checkpoint.
The two must track each other as NTP converges from milliseconds to its
sub-millisecond floor.
"""

import pytest

from repro.analysis import ExperimentReport, fmt_us
from repro.clocksync import worst_pairwise_skew_ns
from repro.units import GBPS, MS, SECOND, US

from harness import emit_report, two_node_rig

CHECKPOINT_AT_S = (2, 5, 10, 20, 60)


def measure_at(delay_s):
    sim, testbed, exp = two_node_rig(bandwidth_bps=GBPS, seed=6)
    sim.run(until=sim.now + delay_s * SECOND)
    clocks = [node.machine.clock for node in exp.nodes.values()]
    clock_error = worst_pairwise_skew_ns(clocks)
    result = sim.run(until=exp.coordinator.checkpoint_scheduled())
    return clock_error, result.suspend_skew_ns


def run_sweep():
    return {t: measure_at(t) for t in CHECKPOINT_AT_S}


def test_ablation_ntp_convergence(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport("Ablation — suspend skew tracks NTP "
                              "convergence (two nodes, ntpd from boot)")
    for t, (clock_error, skew) in sweep.items():
        report.add(f"t = boot + {t:>2} s",
                   "skew ~= clock error",
                   f"clock error {fmt_us(clock_error)}, "
                   f"suspend skew {fmt_us(skew)}")
    emit_report(report, "ablation_ntp_convergence.txt")

    skews = [skew for _e, skew in sweep.values()]
    errors = [e for e, _s in sweep.values()]
    # 1. Early checkpoints see milliseconds of skew; converged ones see
    #    sub-millisecond skew.
    assert skews[0] > 1 * MS
    assert skews[-1] < 1 * MS
    # 2. Convergence is monotone in the large: the last skew is well
    #    below the first, and the floor is microseconds, not zero.
    assert skews[-1] < skews[0] / 3
    assert skews[-1] > 1 * US
    # 3. The skew tracks the measured clock disagreement (same order of
    #    magnitude at every point) — the paper's stated bound.
    for error, skew in sweep.values():
        assert skew <= max(4 * error, error + 500 * US)
        assert skew >= error / 8

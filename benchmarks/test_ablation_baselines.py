"""Ablations: what each piece of the design buys (motivated by §3 and §8).

Four comparisons against the transparent coordinated checkpoint:

1. **No temporal firewall** (naive suspend): the guest observes the
   downtime — a sleeping loop measures a giant iteration.
2. **No coordination** (independent per-node checkpoints): peers keep
   transmitting into frozen nodes; live RTO timers fire; TCP retransmits.
3. **No clock-scheduled trigger** (event-driven "checkpoint now"): skew
   becomes control-network delivery jitter instead of clock-sync error.
4. **Remus-style buffered output**: throughput survives but packets leave
   in epoch bursts, adding up to one epoch of delay — the background
   state-saving the paper rejects for realism (§8).
"""

import random

import pytest

from repro.analysis import ExperimentReport, fmt_ms, fmt_us
from repro.checkpoint import (NaiveCheckpointer, RemusCheckpointer,
                              UncoordinatedRunner)
from repro.units import GBPS, MB, MBPS, MS, SECOND, US
from repro.workloads import IperfSession, SleeperBenchmark
from repro.xen import CheckpointConfig, LocalCheckpointer

from harness import emit_report, single_node_rig, two_node_rig


def ablation_firewall():
    """Naive vs transparent checkpoint under a sleeping loop.

    Both arms use a stop-and-copy (non-live) checkpoint with ~650 ms of
    downtime, so the contrast is purely the temporal firewall: the
    transparent variant conceals the entire suspension, the naive one
    leaks it into a single giant iteration.
    """
    out = {}
    config = CheckpointConfig(live=False)
    for mode in ("transparent", "naive"):
        sim, _tb, exp = single_node_rig(seed=81)
        kernel = exp.kernel("node0")
        bench = SleeperBenchmark(kernel, iterations=500)
        bench.start()
        domain = exp.node("node0").domain
        if mode == "naive":
            ckpt = NaiveCheckpointer(domain, config)
            sim.call_in(3 * SECOND, ckpt.checkpoint)
        else:
            ckpt = LocalCheckpointer(domain, config)
            sim.call_in(3 * SECOND, ckpt.checkpoint)
        sim.run(until=bench.join())
        out[mode] = max(bench.result.iteration_ns)
    return out


def ablation_coordination():
    """Coordinated vs uncoordinated checkpoints under an iperf stream."""
    out = {}
    for mode in ("coordinated", "uncoordinated"):
        sim, _tb, exp = two_node_rig(bandwidth_bps=GBPS, seed=82)
        session = IperfSession(exp.kernel("node1"), exp.kernel("node0"))
        session.start()
        sim.run(until=sim.now + 2 * SECOND)
        if mode == "coordinated":
            # Same big (non-live) downtime, but synchronized: both nodes
            # and their timers freeze together.
            for node in exp.nodes.values():
                node.checkpointer.config = CheckpointConfig(live=False)
            for _ in range(2):
                sim.run(until=exp.coordinator.checkpoint_scheduled())
                sim.run(until=sim.now + 3 * SECOND)
        else:
            ckpts = [LocalCheckpointer(n.domain, CheckpointConfig(live=False))
                     for n in exp.nodes.values()]
            runner = UncoordinatedRunner(sim, ckpts, period_ns=3 * SECOND,
                                         stagger_ns=1500 * MS)
            runner.start(rounds=2)
            sim.run(until=sim.now + 14 * SECOND)
        session.stop()
        sim.run(until=sim.now + 500 * MS)
        out[mode] = session.sender_stats().retransmits
    return out


def ablation_trigger():
    """Clock-scheduled vs event-driven suspend skew (converged NTP)."""
    sim, _tb, exp = two_node_rig(bandwidth_bps=GBPS, seed=83)
    sim.run(until=sim.now + 60 * SECOND)        # NTP converged
    scheduled = []
    event_driven = []
    for _ in range(3):
        r = sim.run(until=exp.coordinator.checkpoint_scheduled())
        scheduled.append(r.suspend_skew_ns)
        sim.run(until=sim.now + 2 * SECOND)
        r = sim.run(until=exp.coordinator.checkpoint_now())
        event_driven.append(r.suspend_skew_ns)
        sim.run(until=sim.now + 2 * SECOND)
    return scheduled, event_driven


def ablation_remus():
    """Per-packet latency added by Remus-style buffered output."""
    from repro.net import Packet

    out = {}
    for mode in ("transparent", "remus"):
        sim, _tb, exp = two_node_rig(bandwidth_bps=GBPS, seed=84)
        k0, k1 = exp.kernel("node0"), exp.kernel("node1")
        latencies = []
        k1.host.register_protocol(
            "probe", lambda p: latencies.append(sim.now - p.headers["t"]))
        if mode == "remus":
            remus = RemusCheckpointer(exp.node("node0").domain,
                                      epoch_ns=25 * MS)
            remus.start()

        def probe(k):
            for n in range(200):
                k.host.send(Packet("node0", "node1", "probe", 200,
                                   headers={"t": sim.now}))
                yield k.sleep(10 * MS)

        k0.spawn(probe)
        sim.run(until=sim.now + 4 * SECOND)
        out[mode] = sum(latencies) / len(latencies)
    return out


def run_ablations():
    return (ablation_firewall(), ablation_coordination(),
            ablation_trigger(), ablation_remus())


def test_ablation_baselines(benchmark):
    firewall, coordination, trigger, remus = benchmark.pedantic(
        run_ablations, rounds=1, iterations=1)
    scheduled, event_driven = trigger

    report = ExperimentReport("Ablations — each design element vs its "
                              "baseline")
    report.add("worst sleeper iteration, transparent", "~20 ms",
               fmt_ms(firewall["transparent"]))
    report.add("worst sleeper iteration, no firewall", ">> 20 ms",
               fmt_ms(firewall["naive"]))
    report.add("iperf retransmits, coordinated", "0",
               str(coordination["coordinated"]))
    report.add("iperf retransmits, uncoordinated", "> 0",
               str(coordination["uncoordinated"]))
    report.add("suspend skew, clock-scheduled", "~clock sync error",
               " / ".join(fmt_us(s) for s in scheduled))
    report.add("suspend skew, event-driven", "~bus jitter",
               " / ".join(fmt_us(s) for s in event_driven))
    report.add("probe latency, transparent", "(wire)",
               fmt_us(remus["transparent"]))
    report.add("probe latency, Remus buffered I/O", "+ up to 1 epoch",
               fmt_ms(remus["remus"]))
    emit_report(report, "ablations.txt")

    # 1. The firewall is what hides downtime from the guest: the same
    #    ~650 ms suspension is invisible with it, a giant iteration
    #    without it.
    assert firewall["transparent"] < 21 * MS
    assert firewall["naive"] > 10 * firewall["transparent"]
    # 2. Coordination is what protects TCP.
    assert coordination["coordinated"] == 0
    assert coordination["uncoordinated"] > 0
    # 3. Both triggers give sub-millisecond skew once NTP has converged;
    #    the paper supports both through one mechanism.
    assert max(scheduled) < 1 * MS
    assert max(event_driven) < 2 * MS
    # 4. Remus-style buffering taxes every packet; the transparent
    #    checkpoint taxes none.
    assert remus["remus"] > 20 * remus["transparent"]
    assert remus["remus"] > 5 * MS

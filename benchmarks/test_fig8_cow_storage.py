"""Figure 8: Bonnie++ against copy-on-write storage configurations.

Paper (512 MB file, freshly created disk):

* sequential block writes to a branch cost 17% over a raw partition —
  metadata-region seeks that disappear as the disk ages (within 2%);
* block writes to the *original* LVM are 74% slower than to the
  modified branch (read-before-write overhead);
* read-side and character-granularity phases are close across
  configurations (char I/O is CPU-bound).
"""

import pytest

from repro.analysis import ExperimentReport
from repro.hw import Disk, DiskSpec
from repro.sim import Simulator
from repro.storage import (BranchConfig, CowMode, Extent, LinearVolume,
                           VolumeManager)
from repro.units import GB, MB
from repro.workloads import BonnieBenchmark, BonnieConfig
from repro.workloads.bonnie import BonnieResult

from harness import emit_report

FILE_BYTES = 512 * MB
GOLDEN_BLOCKS = 400_000


def bonnie_on(config_name):
    sim = Simulator()
    disk = Disk(sim, DiskSpec(capacity_bytes=64 * GB))
    if config_name == "base":
        volume = LinearVolume(Extent(disk, 0, GOLDEN_BLOCKS))
    else:
        manager = VolumeManager(sim, disk)
        golden = manager.create_golden("img", GOLDEN_BLOCKS)
        cfg = {
            "branch": BranchConfig(),
            "branch-aged": BranchConfig(aged=True),
            "branch-orig": BranchConfig(cow_mode=CowMode.ORIGINAL_LVM),
        }[config_name]
        volume = manager.create_branch("b", golden, config=cfg,
                                       log_blocks=GOLDEN_BLOCKS,
                                       aggregated_blocks=GOLDEN_BLOCKS)
    bench = BonnieBenchmark(sim, volume,
                            config=BonnieConfig(file_bytes=FILE_BYTES))
    return sim.run(until=bench.run())


def run_fig8():
    return {name: bonnie_on(name)
            for name in ("base", "branch", "branch-aged", "branch-orig")}


def test_fig8_cow_storage(benchmark):
    results = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    report = ExperimentReport("Figure 8 — Bonnie++ on Base / Branch / "
                              "Branch-Orig (512 MB file)")
    for phase in BonnieResult.PHASES:
        row = " / ".join(f"{results[c].throughput[phase]:.1f}"
                         for c in ("base", "branch", "branch-orig"))
        report.add(f"{phase} (MB/s)", "base/branch/orig", row)

    base_w = results["base"].throughput["block-writes"]
    fresh_w = results["branch"].throughput["block-writes"]
    aged_w = results["branch-aged"].throughput["block-writes"]
    orig_w = results["branch-orig"].throughput["block-writes"]
    fresh_overhead = (base_w - fresh_w) / base_w
    aged_overhead = (base_w - aged_w) / base_w
    orig_slowdown = fresh_w / orig_w - 1.0

    report.add("branch write overhead (fresh disk)", "17%",
               f"{fresh_overhead * 100:.1f}%")
    report.add("branch write overhead (aged disk)", "~2%",
               f"{aged_overhead * 100:.1f}%")
    report.add("orig-LVM block writes slower than branch", "74%",
               f"{orig_slowdown * 100:.0f}%")
    emit_report(report, "fig8.txt")

    # Shape assertions:
    # 1. Fresh-branch write overhead in the paper's neighbourhood, and it
    #    disappears as the disk ages.
    assert 0.10 < fresh_overhead < 0.25
    assert aged_overhead < 0.05
    # 2. Original LVM pays read-before-write: much slower block writes.
    assert orig_slowdown > 0.4
    # 3. Character phases are CPU-bound: configurations stay close (the
    #    original LVM still pays some read-before-write under char writes).
    for phase in ("char-writes", "char-reads"):
        values = [results[c].throughput[phase]
                  for c in ("base", "branch", "branch-orig")]
        assert max(values) / min(values) < 1.6
    # 4. Reads from a freshly written branch come back from the (local,
    #    sequential) redo log at near-raw speed.
    base_r = results["base"].throughput["block-reads"]
    branch_r = results["branch"].throughput["block-reads"]
    assert branch_r > 0.8 * base_r

"""§5.1: free-block elimination.

Paper: running ``make`` followed by ``make clean`` on a Linux kernel
source tree leaves a current delta of 490 MB at the block level, although
almost all of that data has been freed by the filesystem.  The ext3
free-block plugin snoops on writes below the guest and shrinks the
swapped delta from 490 MB to 36 MB.
"""

import pytest

from repro.analysis import ExperimentReport
from repro.units import MB
from repro.workloads import KernelBuildConfig, KernelBuildWorkload

from harness import emit_report, single_node_rig


def run_sec51():
    sim, testbed, exp = single_node_rig(seed=51)
    node = exp.node("node0")
    build = KernelBuildWorkload(sim, node.filesystem, KernelBuildConfig())
    sim.run(until=build.make())
    delta_after_make = node.branch.current_delta_blocks * 4096
    build.make_clean()
    raw_delta = node.branch.current_delta_blocks * 4096
    eliminated_delta = node.freeblock_plugin.effective_delta_bytes(node.branch)
    return delta_after_make, raw_delta, eliminated_delta


def test_sec51_free_block_elimination(benchmark):
    after_make, raw, eliminated = benchmark.pedantic(run_sec51, rounds=1,
                                                     iterations=1)

    report = ExperimentReport("§5.1 — free-block elimination "
                              "(make; make clean)")
    report.add("delta without elimination", "490 MB",
               f"{raw / 1e6:.0f} MB")
    report.add("delta with elimination", "36 MB",
               f"{eliminated / 1e6:.0f} MB")
    report.add("reduction factor", f"{490 / 36:.1f}x",
               f"{raw / eliminated:.1f}x")
    emit_report(report, "sec51.txt")

    # Shape assertions:
    # 1. The block layer sees the full build output even after the clean.
    assert raw == pytest.approx(490 * MB, rel=0.02)
    assert after_make == pytest.approx(490 * MB, rel=0.02)
    # 2. The plugin proves all but the retained artifacts dead.
    assert eliminated == pytest.approx(36 * MB, rel=0.05)
    assert raw / eliminated > 10

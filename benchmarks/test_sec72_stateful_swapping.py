"""§7.2: stateful swapping performance.

Paper (single-node experiment, four consecutive swap cycles, 275 MB of
fresh disk data per swapped-in session, state moved over the 100 Mbps
control network):

* initial swap-in: 8 s with the golden image cached on the node,
  +60 s to download it otherwise;
* subsequent swap-ins: constant ~35 s with the lazy copy-in
  optimization, growing past 150 s by the fourth cycle without it;
* swap-outs: constant ~60 s (same amount of new data each session);
* a disk-intensive workload during swap-out costs ~20% more (pre-copied
  blocks overwritten during the copy are sent twice, and the pre-copy is
  rate-limited).
"""

import pytest

from repro.analysis import ExperimentReport, fmt_s
from repro.sim import Simulator
from repro.swap import StatefulSwapper, SwapConfig
from repro.testbed import (Emulab, ExperimentSpec, NodeSpec, TestbedConfig)
from repro.units import MB, SECOND

from harness import emit_report

SESSION_DATA = 275 * MB
CYCLES = 4


def build(seed=72, preload_image=True):
    sim = Simulator()
    testbed = Emulab(sim, TestbedConfig(num_machines=2, seed=seed))
    exp = testbed.define_experiment(ExperimentSpec(
        "swapbench", nodes=[NodeSpec("node0")]))
    if preload_image:
        for cache in testbed.image_caches.values():
            cache.preload("FC4-STD")
    t0 = sim.now
    sim.run(until=exp.swap_in())
    initial_swap_in_ns = sim.now - t0
    return sim, testbed, exp, initial_swap_in_ns


def run_cycles(lazy_copyin, disk_heavy_during_swapout=False, seed=72):
    sim, testbed, exp, initial_ns = build(seed=seed)
    swapper = StatefulSwapper(exp, SwapConfig(lazy_copyin=lazy_copyin))
    node = exp.node("node0")
    swap_outs, swap_ins = [], []
    for cycle in range(CYCLES):
        done = node.filesystem.write_file(f"session{cycle}", SESSION_DATA)
        sim.run(until=done)
        if disk_heavy_during_swapout:
            # A disk-intensive workload keeps rewriting part of the
            # session data while the pre-copy runs, so already-copied
            # blocks go stale and are sent a second time.
            def churn(k, c=cycle):
                for _i in range(12):
                    yield node.filesystem.overwrite_file(f"session{c}",
                                                         nbytes=120 * MB)
                    yield k.sleep(6 * SECOND)
            node.kernel.spawn(churn, name="churn")
        out = sim.run(until=swapper.swap_out())
        swap_outs.append(out)
        sim.run(until=sim.now + 30 * SECOND)      # swapped out for a while
        back = sim.run(until=swapper.swap_in())
        swap_ins.append(back)
    return initial_ns, swap_outs, swap_ins


def run_sec72():
    # Initial swap-in, cached vs uncached golden image.
    _s, _t, _e, cached_ns = build(seed=72, preload_image=True)
    sim_u = Simulator()
    testbed_u = Emulab(sim_u, TestbedConfig(num_machines=2, seed=73))
    exp_u = testbed_u.define_experiment(
        ExperimentSpec("swapbench", nodes=[NodeSpec("node0")]))
    t0 = sim_u.now
    sim_u.run(until=exp_u.swap_in())
    uncached_ns = sim_u.now - t0

    lazy = run_cycles(lazy_copyin=True)
    eager = run_cycles(lazy_copyin=False, seed=74)
    heavy = run_cycles(lazy_copyin=True, disk_heavy_during_swapout=True,
                       seed=75)
    return cached_ns, uncached_ns, lazy, eager, heavy


def test_sec72_stateful_swapping(benchmark):
    cached_ns, uncached_ns, lazy, eager, heavy = benchmark.pedantic(
        run_sec72, rounds=1, iterations=1)
    _initial, lazy_outs, lazy_ins = lazy
    _initial_e, _eager_outs, eager_ins = eager
    _initial_h, heavy_outs, _heavy_ins = heavy

    lazy_in_s = [r.duration_ns / 1e9 for r in lazy_ins]
    eager_in_s = [r.duration_ns / 1e9 for r in eager_ins]
    out_s = [r.duration_ns / 1e9 for r in lazy_outs]
    heavy_out_s = [r.duration_ns / 1e9 for r in heavy_outs]

    report = ExperimentReport("§7.2 — stateful swapping times "
                              "(4 consecutive cycles, 275 MB/session)")
    report.add("initial swap-in (golden cached)", "8 s", fmt_s(cached_ns))
    report.add("initial swap-in (image download)", "+60 s",
               fmt_s(uncached_ns))
    report.add("swap-ins with lazy copy-in", "~35 s constant",
               " / ".join(f"{v:.0f}" for v in lazy_in_s) + " s")
    report.add("swap-ins without (4th cycle)", "> 150 s",
               " / ".join(f"{v:.0f}" for v in eager_in_s) + " s")
    report.add("swap-outs", "~60 s constant",
               " / ".join(f"{v:.0f}" for v in out_s) + " s")
    report.add("swap-out under disk-heavy workload", "+20%",
               f"+{(heavy_out_s[0] / out_s[0] - 1) * 100:.0f}%")
    resent = sum(r.resent_blocks for r in heavy_outs)
    report.add("pre-copied blocks sent twice (disk-heavy)", "(cause)",
               str(resent))
    emit_report(report, "sec72.txt")

    # Shape assertions:
    # 1. Initial swap-in is fast when the image is cached; downloading the
    #    6 GB image dominates otherwise.
    assert cached_ns < 15 * SECOND
    assert uncached_ns > cached_ns + 45 * SECOND
    # 2. Lazy swap-ins stay constant; non-lazy ones grow with the
    #    accumulated aggregated delta.
    assert max(lazy_in_s) - min(lazy_in_s) < 0.25 * max(lazy_in_s)
    assert eager_in_s[-1] > 2.0 * eager_in_s[0]
    assert eager_in_s[-1] > 2.0 * lazy_in_s[-1]
    # 3. Swap-outs are constant (same new data per session).
    assert max(out_s) - min(out_s) < 0.2 * max(out_s)
    # 4. A disk-intensive workload slows swap-out via re-sent blocks.
    assert heavy_out_s[0] > 1.05 * out_s[0]
    assert resent > 0
